#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/pattern_graph.h"
#include "signature/label_values.h"
#include "signature/signature.h"
#include "signature/signature_calculator.h"
#include "util/rng.h"

namespace loom {
namespace signature {
namespace {

using graph::LabelId;
using graph::PatternGraph;
using graph::VertexId;

// ------------------------------------------------------------ label values

TEST(LabelValuesTest, ValuesInRangeAndDeterministic) {
  LabelValues a(16, 251, 1), b(16, 251, 1), c(16, 251, 2);
  bool any_diff = false;
  for (LabelId l = 0; l < 16; ++l) {
    EXPECT_GE(a.Value(l), 1u);
    EXPECT_LT(a.Value(l), 251u);
    EXPECT_EQ(a.Value(l), b.Value(l));
    any_diff |= a.Value(l) != c.Value(l);
  }
  EXPECT_TRUE(any_diff);
}

// -------------------------------------------------------- factor multisets

TEST(SignatureTest, ConstructionSortsFactors) {
  Signature s({5, 1, 3});
  EXPECT_EQ(s.factors(), (std::vector<Factor>{1, 3, 5}));
}

TEST(SignatureTest, AddKeepsOrder) {
  Signature s;
  s.Add(4);
  s.Add(2);
  s.Add(9);
  s.Add(2);
  EXPECT_EQ(s.factors(), (std::vector<Factor>{2, 2, 4, 9}));
}

TEST(SignatureTest, EqualityIsContentBased) {
  EXPECT_EQ(Signature({1, 2, 3}), Signature({3, 2, 1}));
  EXPECT_FALSE(Signature({1, 2}) == Signature({1, 2, 2}));
}

TEST(SignatureTest, MultisetSemanticsDistinguishProducts) {
  // The paper's motivating example: {6,2}, {4,3} and {12} all multiply to 12
  // but are distinct signatures.
  Signature a({6, 2}), b({4, 3}), c({12});
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(b == c);
  EXPECT_FALSE(a == c);
}

TEST(SignatureTest, HashAgreesWithEquality) {
  EXPECT_EQ(Signature({7, 7, 2}).Hash(), Signature({2, 7, 7}).Hash());
  EXPECT_NE(Signature({1}).Hash(), Signature({2}).Hash());
}

TEST(SignatureTest, ExtendedAddsFactors) {
  Signature s({5});
  Signature t = s.Extended({2, 9});
  EXPECT_EQ(t.factors(), (std::vector<Factor>{2, 5, 9}));
  EXPECT_EQ(s.size(), 1u);  // original untouched
}

TEST(SignatureTest, DifferenceToComputesMultisetDelta) {
  Signature parent({3, 5});
  Signature child({3, 3, 5, 8});
  auto diff = parent.DifferenceTo(child);
  ASSERT_TRUE(diff.has_value());
  std::sort(diff->begin(), diff->end());
  EXPECT_EQ(*diff, (FactorDelta{3, 8}));
}

TEST(SignatureTest, DifferenceToRejectsNonSuperset) {
  Signature parent({3, 5});
  EXPECT_FALSE(parent.DifferenceTo(Signature({3})).has_value());
  EXPECT_FALSE(parent.DifferenceTo(Signature({3, 6, 7})).has_value());
}

TEST(SignatureTest, ExtendsByExactMatch) {
  Signature parent({3, 5});
  Signature child({3, 4, 5, 9});
  EXPECT_TRUE(parent.ExtendsBy({9, 4}, child));
  EXPECT_FALSE(parent.ExtendsBy({9}, child));
  EXPECT_FALSE(parent.ExtendsBy({9, 5}, child));
  // Multiplicity matters: delta {4,4} != {4,9}.
  EXPECT_FALSE(parent.ExtendsBy({4, 4}, child));
}

TEST(SignatureTest, ToStringReadable) {
  EXPECT_EQ(Signature({2, 1}).ToString(), "{1,2}");
  EXPECT_EQ(Signature().ToString(), "{}");
}

// -------------------------------------------------------------- calculator

class CalculatorTest : public ::testing::Test {
 protected:
  CalculatorTest() : values_(8, 251, 0xC0FFEE), calc_(&values_) {}
  LabelValues values_;
  SignatureCalculator calc_;
};

TEST_F(CalculatorTest, FactorsNeverZero) {
  for (LabelId a = 0; a < 8; ++a) {
    for (LabelId b = 0; b < 8; ++b) {
      Factor f = calc_.EdgeFactor(a, b);
      EXPECT_GE(f, 1u);
      EXPECT_LE(f, 251u);
    }
    for (uint32_t d = 1; d < 300; ++d) {
      Factor f = calc_.DegreeFactor(a, d);
      EXPECT_GE(f, 1u);
      EXPECT_LE(f, 251u);
    }
  }
}

TEST_F(CalculatorTest, EdgeFactorSymmetric) {
  for (LabelId a = 0; a < 8; ++a) {
    for (LabelId b = 0; b < 8; ++b) {
      EXPECT_EQ(calc_.EdgeFactor(a, b), calc_.EdgeFactor(b, a));
    }
  }
}

TEST_F(CalculatorTest, PaperWorkedExampleQ1) {
  // Sec 2.1: p = 11, r(a) = 3, r(b) = 10. edgeFac(a-b) = (3-10) mod 11 = 4
  // ... the paper says 7 because it subtracts r(b) - r(a) or maps -7 -> 4?
  // (-7 mod 11) = 4, but the paper states 7; they computed (3-10) mod 11
  // with the convention that the result is taken as a positive residue of
  // the *absolute* order they chose. We verify our own convention is
  // self-consistent instead: the single-edge signature has 3 factors and is
  // stable across recomputation.
  Signature s1 = calc_.SingleEdgeSignature(0, 1);
  Signature s2 = calc_.SingleEdgeSignature(1, 0);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), 3u);
}

TEST_F(CalculatorTest, SignatureHas3EPerEdgeFactors) {
  // Handshaking lemma: 3|E| factors total.
  PatternGraph p = PatternGraph::Cycle({0, 1, 2, 3});
  EXPECT_EQ(calc_.ComputeSignature(p).size(), 3 * p.NumEdges());
  PatternGraph q = PatternGraph::Path({0, 1, 2});
  EXPECT_EQ(calc_.ComputeSignature(q).size(), 3 * q.NumEdges());
}

TEST_F(CalculatorTest, IncrementalMatchesFullRecompute) {
  // Build a-b-c by adding b-c to a-b; factors must compose exactly.
  PatternGraph ab = PatternGraph::Path({0, 1});
  PatternGraph abc = PatternGraph::Path({0, 1, 2});
  Signature base = calc_.ComputeSignature(ab);
  // Adding edge (b,c): b reaches degree 2, c degree 1.
  FactorDelta delta = calc_.FactorsForEdgeAddition(1, 2, 2, 1);
  EXPECT_EQ(base.Extended(delta), calc_.ComputeSignature(abc));
}

TEST_F(CalculatorTest, StreamEdgeSignatureMatchesPatternSignature) {
  // Same labelled structure via the two APIs.
  std::vector<stream::StreamEdge> edges(2);
  edges[0] = {0, 10, 11, /*label_u=*/0, /*label_v=*/1};
  edges[1] = {1, 11, 12, /*label_u=*/1, /*label_v=*/2};
  Signature via_stream = calc_.ComputeSignature(edges);
  Signature via_pattern = calc_.ComputeSignature(PatternGraph::Path({0, 1, 2}));
  EXPECT_EQ(via_stream, via_pattern);
}

// Property: isomorphic graphs ALWAYS share a signature (no false negatives).
// We generate random connected patterns, relabel vertices by a random
// permutation, and verify signature equality.
class IsomorphismInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IsomorphismInvarianceTest, PermutedGraphHasSameSignature) {
  util::Rng rng(GetParam());
  LabelValues values(6, 251, 42);
  SignatureCalculator calc(&values);

  // Random connected graph: spanning-tree + extra edges.
  const size_t n = 2 + rng.Uniform(6);
  std::vector<LabelId> labels(n);
  for (auto& l : labels) l = static_cast<LabelId>(rng.Uniform(6));

  PatternGraph g;
  for (LabelId l : labels) g.AddVertex(l);
  for (VertexId v = 1; v < n; ++v) {
    g.AddEdge(v, static_cast<VertexId>(rng.Uniform(v)));
  }
  const size_t extra = rng.Uniform(4);
  for (size_t i = 0; i < extra; ++i) {
    VertexId a = static_cast<VertexId>(rng.Uniform(n));
    VertexId b = static_cast<VertexId>(rng.Uniform(n));
    if (a != b) g.AddEdge(a, b);
  }

  // Random permutation of vertex ids.
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(&perm);
  PatternGraph h;
  std::vector<VertexId> fresh(n);
  for (VertexId v = 0; v < n; ++v) fresh[perm[v]] = 0;
  for (VertexId v = 0; v < n; ++v) {
    (void)v;
  }
  // Add vertices in permuted order with matching labels.
  std::vector<LabelId> permuted_labels(n);
  for (VertexId v = 0; v < n; ++v) permuted_labels[perm[v]] = g.label(v);
  for (VertexId v = 0; v < n; ++v) h.AddVertex(permuted_labels[v]);
  // Add edges in a shuffled order.
  std::vector<graph::Edge> edges = g.edges();
  rng.Shuffle(&edges);
  for (const graph::Edge& e : edges) h.AddEdge(perm[e.u], perm[e.v]);

  EXPECT_EQ(calc.ComputeSignature(g), calc.ComputeSignature(h))
      << "isomorphic graphs must collide (no false negatives)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsomorphismInvarianceTest,
                         ::testing::Range<uint64_t>(0, 50));


TEST_F(CalculatorTest, DirectedEdgeFactorIsOrderSensitive) {
  // The paper's directed extension subtracts target from source; for labels
  // with distinct random values the two orientations differ (they sum to p
  // modulo the field), while same-label edges are orientation-free.
  bool any_asymmetric = false;
  for (graph::LabelId a = 0; a < 8; ++a) {
    for (graph::LabelId b = 0; b < 8; ++b) {
      Factor ab = calc_.DirectedEdgeFactor(a, b);
      Factor ba = calc_.DirectedEdgeFactor(b, a);
      EXPECT_GE(ab, 1u);
      EXPECT_LE(ab, 251u);
      if (a == b) {
        EXPECT_EQ(ab, ba);
        EXPECT_EQ(ab, 251u);  // zero residue maps to p
      } else if (ab != ba) {
        any_asymmetric = true;
        // Complementary residues: ab + ba == p (mod p), with 0 -> p.
        EXPECT_EQ((ab + ba) % 251u, 0u);
      }
    }
  }
  EXPECT_TRUE(any_asymmetric);
}

TEST_F(CalculatorTest, UndirectedFactorMatchesOneOrientation) {
  for (graph::LabelId a = 0; a < 8; ++a) {
    for (graph::LabelId b = 0; b < 8; ++b) {
      Factor undirected = calc_.EdgeFactor(a, b);
      EXPECT_TRUE(undirected == calc_.DirectedEdgeFactor(a, b) ||
                  undirected == calc_.DirectedEdgeFactor(b, a));
    }
  }
}

TEST_F(CalculatorTest, DifferentLabelsUsuallyDiffer) {
  // Not guaranteed (collisions exist) but with p=251 and this seed the
  // canonical small cases must differ.
  Signature ab = calc_.SingleEdgeSignature(0, 1);
  Signature ac = calc_.SingleEdgeSignature(0, 2);
  Signature abc = calc_.ComputeSignature(PatternGraph::Path({0, 1, 2}));
  EXPECT_FALSE(ab == ac);
  EXPECT_FALSE(ab == abc);  // different sizes, trivially
}

}  // namespace
}  // namespace signature
}  // namespace loom
