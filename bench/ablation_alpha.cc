// Ablation (ours, motivated by Sec. 4): equal opportunism's knobs.
//   - α (rationing aggression; paper default 2/3) swept over (0, 1],
//   - rationing disabled entirely (the paper's "naive approach" which
//     greedily assigns whole clusters),
//   - the neighbour-bid generalisation weight (0 recovers the literal Eq. 1).

#include <iostream>

#include "bench_common.h"
#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "partition/partition_metrics.h"
#include "util/table_writer.h"

int main() {
  using namespace loom;
  bench::Banner("Ablation — equal opportunism (α, rationing, neighbour bid)",
                "Sec. 4 (α = 2/3, b = 1.1)");

  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, bench::BenchScale());
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  eval::ExperimentConfig base;
  base.window_size = bench::BenchWindow();
  eval::SystemResult fennel =
      eval::RunSystem(eval::System::kFennel, ds, es, base);
  std::cout << "dataset " << ds.meta.name
            << ", fennel ipt = " << util::TableWriter::Fmt(fennel.weighted_ipt, 0)
            << "\n\n";

  {
    util::TableWriter t({"alpha", "loom ipt", "vs fennel", "imbalance"});
    for (double alpha : {1.0 / 6, 1.0 / 3, 0.5, 2.0 / 3, 5.0 / 6, 1.0}) {
      eval::ExperimentConfig cfg = base;
      cfg.alpha = alpha;
      eval::SystemResult r = eval::RunSystem(eval::System::kLoom, ds, es, cfg);
      t.AddRow({util::TableWriter::Fmt(alpha, 3),
                util::TableWriter::Fmt(r.weighted_ipt, 0),
                util::TableWriter::Pct(r.weighted_ipt / fennel.weighted_ipt),
                util::TableWriter::Pct(r.imbalance)});
    }
    std::cout << "α sweep (rationing aggression):\n";
    t.Print(std::cout);
    std::cout << "\n";
  }

  {
    util::TableWriter t({"variant", "loom ipt", "vs fennel", "imbalance"});
    for (bool disable : {false, true}) {
      eval::ExperimentConfig cfg = base;
      cfg.disable_rationing = disable;
      eval::SystemResult r = eval::RunSystem(eval::System::kLoom, ds, es, cfg);
      t.AddRow({disable ? "greedy (no rationing)" : "rationed (paper)",
                util::TableWriter::Fmt(r.weighted_ipt, 0),
                util::TableWriter::Pct(r.weighted_ipt / fennel.weighted_ipt),
                util::TableWriter::Pct(r.imbalance)});
    }
    std::cout << "rationing on/off (the paper's Sec. 4 motivation):\n";
    t.Print(std::cout);
    std::cout << "\n";
  }

  {
    util::TableWriter t({"neighbor bid β", "loom ipt", "vs fennel"});
    for (double beta : {0.0, 0.1, 0.25, 0.5, 1.0}) {
      eval::ExperimentConfig cfg = base;
      cfg.neighbor_bid_weight = beta;
      eval::SystemResult r = eval::RunSystem(eval::System::kLoom, ds, es, cfg);
      t.AddRow({util::TableWriter::Fmt(beta, 2),
                util::TableWriter::Fmt(r.weighted_ipt, 0),
                util::TableWriter::Pct(r.weighted_ipt / fennel.weighted_ipt)});
    }
    std::cout << "neighbour-bid weight (β = 0 is the literal Eq. 1):\n";
    t.Print(std::cout);
  }

  std::cout << "\nExpected shape: ipt is fairly flat in α; disabling "
               "rationing trades balance for\nmodest ipt changes; a small "
               "positive β helps clusters land near satellite structure.\n";
  return 0;
}
