// Table 2: time (ms) to partition 10k edges, for every dataset (including
// LUBM-4000, which is partitioned but never queried — exactly as in the
// paper) and every system.

#include <iostream>

#include "bench_common.h"
#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/table_writer.h"

int main() {
  using namespace loom;
  bench::Banner("Table 2 — time to partition 10k edges", "Table 2");

  std::vector<eval::ComparisonResult> results;
  for (auto id : datasets::AllDatasets()) {
    datasets::Dataset ds = datasets::MakeDataset(id, bench::BenchScale());
    eval::ExperimentConfig cfg;
    cfg.order = stream::StreamOrder::kBreadthFirst;
    cfg.window_size = bench::BenchWindow();
    const stream::EdgeStream es =
        stream::MakeStream(ds.graph, cfg.order, cfg.stream_seed);

    eval::ComparisonResult cmp;
    cmp.dataset = ds.meta.name;
    cmp.k = cfg.k;
    cmp.stream_edges = es.size();
    for (auto s : eval::AllSystems()) {
      cmp.systems.push_back(eval::RunSystemTimingOnly(s, ds, es, cfg));
    }
    results.push_back(std::move(cmp));
  }
  eval::PrintTimingTable(results, std::cout);

  // Loom's slowdown factor vs Fennel (paper: avg 2-3x, range 1.5-7.1).
  std::cout << "\nLoom / Fennel slowdown factors: ";
  for (const auto& r : results) {
    const auto* loom = r.Find(eval::System::kLoom);
    const auto* fennel = r.Find(eval::System::kFennel);
    std::cout << r.dataset << "="
              << util::TableWriter::Fmt(
                     loom->ms_per_10k_edges /
                         std::max(fennel->ms_per_10k_edges, 1e-9),
                     1)
              << "x ";
  }
  std::cout << "\n\nExpected shape (paper): Hash fastest; LDG ~ Fennel; Loom "
               "2-3x slower on average\n(the paper reports 129-240 ms per "
               "10k on 2016 hardware; absolute numbers differ).\n";
  return 0;
}
