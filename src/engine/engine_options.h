// Unified, string-addressable configuration for every partitioner backend.
//
// The paper evaluates a *family* of streaming partitioners over many
// workloads; tools, benches and the eval harness all need to construct any
// backend from the same knobs. EngineOptions is that one surface: a flat set
// of typed fields, each addressable by a stable string key, so a CLI flag
// (`--opt window_size=4000`), a bench config line or a programmatic override
// all go through the same validated code path. Unknown keys and malformed
// values produce actionable errors (the offending key, the expected type and
// range, and the list of known keys) instead of silently falling back to a
// default.
//
// Every key round-trips: Get() returns a canonical string form that Set()
// parses back to the identical value (doubles use shortest-round-trip
// formatting). Backends simply ignore keys they have no use for — "hash"
// reads only k/expected_vertices, "loom" reads everything.

#ifndef LOOM_ENGINE_ENGINE_OPTIONS_H_
#define LOOM_ENGINE_ENGINE_OPTIONS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "partition/partitioner.h"

namespace loom {
namespace engine {

struct EngineOptions {
  // ------------------------------------------------- shared (all backends)
  /// Number of partitions.
  uint32_t k = 8;
  /// Expected totals n and m — the standard parameterisation for this
  /// family of streaming heuristics (usually filled from the dataset).
  uint64_t expected_vertices = 0;
  uint64_t expected_edges = 0;
  /// ν: per-partition capacity is ν·n/k (Fennel's and Loom's bound; LDG and
  /// hash override it internally, as the paper describes).
  double max_imbalance = 1.1;
  /// Adjacency arena page capacity in entries (0 = LOOM_ADJ_PAGE env, else
  /// 64). Layout/speed only: assignments are bit-identical for every value.
  uint32_t adj_page = 0;
  /// Visible degree at which a vertex gets incremental per-partition tally
  /// counters (0 = LOOM_HUB_THRESHOLD env, else 128; env 0 disables).
  /// Speed only: the counters equal the from-scratch tallies exactly.
  uint32_t hub_threshold = 0;

  // ------------------------------------------------------------ loom knobs
  /// Sliding window size t (paper default 10k edges).
  uint64_t window_size = 10000;
  /// Motif support threshold T (paper default 40%).
  double support_threshold = 0.4;
  /// Finite-field prime p for signatures (paper: 251).
  uint32_t prime = 251;
  /// Seed for the label -> random value assignment.
  uint64_t signature_seed = 0xC0FFEE;
  /// Equal-opportunism rationing aggression α in (0, 1].
  double alpha = 2.0 / 3.0;
  /// Imbalance bound b: partitions larger than b·Smin get ration 0.
  double balance_b = 1.1;
  /// Weight of the assigned-neighbour term in Eq. 1 bids (0 = literal Eq. 1).
  double neighbor_bid_weight = 0.25;
  /// Ablation escape hatch: disable rationing entirely.
  bool disable_rationing = false;
  /// Matcher cap on live matches considered per endpoint.
  uint64_t max_matches_per_vertex = 64;
  /// Compact the matchList every this many admitted edges.
  uint64_t compact_interval = 1024;

  // ---------------------------------------------------------- fennel knobs
  /// Fennel's objective exponent γ (paper evaluation: 1.5).
  double fennel_gamma = 1.5;

  // ------------------------------------- edge-partitioner knobs (hdrf/dbh)
  /// HDRF balance weight λ: 0 = pure greedy replication score, larger
  /// values push toward even edge loads (HDRF paper default 1.1).
  double lambda = 1.1;
  /// HDRF balance-term denominator guard ε (> 0).
  double epsilon = 1.0;
  /// hep: a vertex goes high-degree (streamed via the HDRF fallback, its
  /// in-memory adjacency freed) once its partial degree exceeds
  /// threshold_factor x the running mean partial degree.
  double threshold_factor = 4.0;

  // ------------------------------------------------------------ simd knob
  /// Kernel dispatch level for the util::simd hot-loop kernels: "scalar",
  /// "sse2" or "avx2" force that level process-wide at construction;
  /// "auto" leaves the active level alone (the environment default —
  /// LOOM_SIMD if set, else the CPU's best — until something forces one).
  /// All levels are bit-identical, so this only affects speed (and lets
  /// the differential suites force the scalar twin).
  std::string simd = "auto";

  // --------------------------------------------------- loom-sharded knobs
  /// S: shard worker threads (vertex space hashed v mod S). Output is
  /// bit-identical to "loom" for every S; see core/loom_sharded.h.
  uint32_t shards = 4;
  /// Bounded fan-out work-queue depth per shard (backpressure).
  uint64_t shard_queue_depth = 4;

  friend bool operator==(const EngineOptions&, const EngineOptions&) = default;

  /// Sets the field addressed by `key` from its string form. Returns false
  /// (and fills `*error` with an actionable message) on an unknown key, a
  /// malformed value, or an out-of-range value.
  bool Set(std::string_view key, std::string_view value, std::string* error);

  /// Canonical string form of the field addressed by `key` (parses back to
  /// the identical value via Set). Empty string and `*found = false` for
  /// unknown keys.
  std::string Get(std::string_view key, bool* found = nullptr) const;

  /// Applies a list of "key=value" overrides in order (CLI / bench-config
  /// form). Stops at the first error.
  bool ApplyOverrides(const std::vector<std::string>& overrides,
                      std::string* error);

  /// Every known key with its current canonical value, in declaration order.
  std::vector<std::pair<std::string, std::string>> ToFlat() const;

  /// All known key names, in declaration order.
  static std::vector<std::string_view> KeyNames();

  /// Static per-key documentation row: name, type/range spec (as quoted in
  /// error messages) and a one-line description. What `loom_partition
  /// --help-opts` and the README options table render.
  struct KeyInfo {
    std::string_view name;
    std::string_view spec;
    std::string_view help;
  };

  /// Every known key's documentation, in declaration order.
  static std::vector<KeyInfo> KeyTable();

  /// The subset every backend shares.
  partition::PartitionerConfig BaseConfig() const {
    partition::PartitionerConfig base;
    base.k = k;
    base.expected_vertices = static_cast<size_t>(expected_vertices);
    base.expected_edges = static_cast<size_t>(expected_edges);
    base.max_imbalance = max_imbalance;
    base.adj_page_entries = adj_page;
    base.hub_degree_threshold = hub_threshold;
    return base;
  }
};

}  // namespace engine
}  // namespace loom

#endif  // LOOM_ENGINE_ENGINE_OPTIONS_H_
