// loom::engine — the one facade every caller constructs partitioners
// through.
//
// The paper's contribution is a *family* of streaming partitioners compared
// uniformly across workloads and stream orders; this layer makes the code
// match that shape. Instead of four hand-rolled constructors (and one-off
// LoomOptions/PartitionerConfig assembly in every tool, bench and example),
// callers:
//
//   engine::EngineOptions opts;              // typed, string-addressable
//   opts.Set("k", "8", &err);                // or opts.k = 8
//   engine::BuildContext ctx{&workload, num_labels};
//   auto p = engine::PartitionerRegistry::Global().Create("loom", opts, ctx,
//                                                         &err);
//   auto src = engine::MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
//   engine::Drive(p.get(), src.get(), &observer);   // batched pull ingest
//
// Registered backends: "hash", "ldg", "fennel", "loom" (and anything a
// client registers at runtime — multi-backend experiments plug in here).
// One-string construction ("loom:window_size=4000,alpha=0.5") is provided
// for CLIs and bench configs via BuildPartitioner/ParseBackendSpec.

#ifndef LOOM_ENGINE_ENGINE_H_
#define LOOM_ENGINE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/edge_source.h"
#include "engine/engine_options.h"
#include "engine/observer.h"
#include "partition/partitioner.h"
#include "query/query.h"

namespace loom {
namespace engine {

/// Non-option inputs a backend may need at construction time. Options are
/// plain values (string-settable); the context carries the references.
struct BuildContext {
  /// The query workload ("loom" requires it; baselines ignore it).
  const query::Workload* workload = nullptr;
  /// Size of the label alphabet |LV| (for signature tables).
  size_t num_labels = 0;
};

/// Name -> factory registry. The four paper systems are pre-registered;
/// Register() adds experimental backends without touching any call site.
class PartitionerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<partition::Partitioner>(
      const EngineOptions&, const BuildContext&, std::string* error)>;

  /// The process-wide registry with the built-in backends registered.
  static PartitionerRegistry& Global();

  /// Registers `factory` under `name`. Returns false (registry unchanged)
  /// if the name is already taken.
  bool Register(const std::string& name, Factory factory);

  bool Contains(std::string_view name) const;

  /// Registered backend names, registration order (built-ins first).
  std::vector<std::string> Names() const;

  /// Builds backend `name`. Returns nullptr and an actionable `*error`
  /// (unknown name lists the registered ones; factories report missing
  /// context) on failure.
  std::unique_ptr<partition::Partitioner> Create(std::string_view name,
                                                 const EngineOptions& options,
                                                 const BuildContext& context,
                                                 std::string* error) const;

 private:
  std::vector<std::pair<std::string, Factory>> factories_;
};

/// A parsed "name" / "name:key=value,key=value" backend spec string (the
/// form CLIs and bench configs pass around).
struct BackendSpec {
  std::string name;
  std::vector<std::string> overrides;  // "key=value" strings
};

/// Parses `spec`; false + actionable `*error` on malformed input (the
/// overrides are validated later, by EngineOptions::ApplyOverrides).
bool ParseBackendSpec(std::string_view spec, BackendSpec* out,
                      std::string* error);

/// One-call construction from a spec string: parses `spec`, applies its
/// overrides on top of `base`, and builds via the global registry.
std::unique_ptr<partition::Partitioner> BuildPartitioner(
    std::string_view spec, EngineOptions base, const BuildContext& context,
    std::string* error);

// --------------------------------------------------------------- driving

struct DriveConfig {
  /// Edges pulled (and handed to IngestBatch) per iteration.
  size_t batch_size = 512;
  /// Fire OnProgress roughly every this many edges (0 = only the final,
  /// finalizing=true event).
  size_t progress_interval = 1 << 16;
  /// Call Finalize() when the source is exhausted.
  bool finalize = true;
};

struct DriveResult {
  size_t edges = 0;   // stream elements ingested
  double ms = 0.0;    // wall time for ingest (+ finalize)
};

/// Pulls `source` dry through `partitioner` in batches, wiring `observer`
/// (may be nullptr) into the partitioner for the duration of the drive and
/// restoring the previous observer afterwards.
DriveResult Drive(partition::Partitioner* partitioner, EdgeSource* source,
                  EngineObserver* observer = nullptr,
                  const DriveConfig& config = {});

}  // namespace engine
}  // namespace loom

#endif  // LOOM_ENGINE_ENGINE_H_
