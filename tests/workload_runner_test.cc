#include "query/workload_runner.h"

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"

namespace loom {
namespace query {
namespace {

TEST(WorkloadTest, AddAndTotals) {
  graph::LabelRegistry reg;
  Workload w;
  w.Add("q1", graph::PatternGraph::ParsePath("a-b", &reg), 3.0);
  w.Add("q2", graph::PatternGraph::ParsePath("b-c", &reg), 1.0);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.TotalFrequency(), 4.0);
  w.Normalize();
  EXPECT_NEAR(w.TotalFrequency(), 1.0, 1e-12);
  EXPECT_NEAR(w.queries()[0].frequency, 0.75, 1e-12);
}

TEST(WorkloadTest, NormalizeEmptyIsNoop) {
  Workload w;
  w.Normalize();
  EXPECT_TRUE(w.empty());
}

TEST(WorkloadRunnerTest, WeightingMatchesManualSum) {
  auto ds = datasets::MakeFigure1Dataset();
  partition::Partitioning p(2, 8);
  for (graph::VertexId v = 0; v < 8; ++v) p.Assign(v, v % 2);

  WorkloadResult result = RunWorkload(ds.graph, p, ds.workload);
  ASSERT_EQ(result.per_query.size(), ds.workload.size());

  double manual_ipt = 0, manual_trav = 0;
  uint64_t manual_matches = 0;
  for (const QueryOutcome& q : result.per_query) {
    manual_ipt += q.frequency * static_cast<double>(q.result.ipt);
    manual_trav += q.frequency * static_cast<double>(q.result.traversals);
    manual_matches += q.result.matches;
  }
  EXPECT_DOUBLE_EQ(result.weighted_ipt, manual_ipt);
  EXPECT_DOUBLE_EQ(result.weighted_traversals, manual_trav);
  EXPECT_EQ(result.total_matches, manual_matches);
}

TEST(WorkloadRunnerTest, FrequenciesAreNormalisedInternally) {
  auto ds = datasets::MakeFigure1Dataset();
  partition::Partitioning p(2, 8);
  for (graph::VertexId v = 0; v < 8; ++v) p.Assign(v, v % 2);
  // Scale all frequencies by 100: normalised results must be identical.
  query::Workload scaled;
  for (const Query& q : ds.workload.queries()) {
    scaled.Add(q.name, q.pattern, q.frequency * 100.0);
  }
  auto a = RunWorkload(ds.graph, p, ds.workload);
  auto b = RunWorkload(ds.graph, p, scaled);
  EXPECT_NEAR(a.weighted_ipt, b.weighted_ipt, 1e-9);
}

TEST(WorkloadRunnerTest, IptRatioInUnitRange) {
  auto ds = datasets::MakeFigure1Dataset();
  partition::Partitioning p(2, 8);
  for (graph::VertexId v = 0; v < 8; ++v) p.Assign(v, v % 2);
  auto r = RunWorkload(ds.graph, p, ds.workload);
  EXPECT_GE(r.IptRatio(), 0.0);
  EXPECT_LE(r.IptRatio(), 1.0);
}

TEST(WorkloadRunnerTest, EmptyWorkload) {
  auto ds = datasets::MakeFigure1Dataset();
  partition::Partitioning p(2, 8);
  Workload empty;
  auto r = RunWorkload(ds.graph, p, empty);
  EXPECT_EQ(r.weighted_ipt, 0.0);
  EXPECT_EQ(r.total_matches, 0u);
  EXPECT_EQ(r.IptRatio(), 0.0);
}

}  // namespace
}  // namespace query
}  // namespace loom
