// The Traversal Pattern Summary Trie (TPSTry++, Sec. 2).
//
// A DAG whose nodes are (signature-identified) connected sub-graphs of the
// workload's query graphs. Every parent is a one-edge-smaller sub-graph of
// each of its children; node support is the summed relative frequency of the
// queries containing that sub-graph (counted once per query, so Fig. 2's
// example yields motifs {a-b, b-c, a-b-c} at T = 40%). Nodes with normalised
// support >= the threshold are motifs; by anti-monotonicity (a node's support
// never exceeds its ancestors'), every ancestor of a motif is a motif.

#ifndef LOOM_TPSTRY_TPSTRY_H_
#define LOOM_TPSTRY_TPSTRY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/pattern_graph.h"
#include "signature/signature.h"
#include "signature/signature_calculator.h"
#include "tpstry/subgraph_enumerator.h"

namespace loom {
namespace tpstry {

/// Id of the root node (the empty graph).
inline constexpr uint32_t kRootId = 0;

/// One trie node: a distinct (by signature) connected sub-graph of some
/// query graph.
struct TpsNode {
  uint32_t id = 0;
  signature::Signature sig;         // factor multiset (empty for the root)
  graph::PatternGraph rep;          // a representative concrete graph
  uint32_t num_edges = 0;
  double support = 0.0;             // accumulated workload frequency
  std::vector<uint32_t> children;   // node ids, deduped
  std::vector<uint32_t> parents;    // node ids, deduped
};

/// The trie. Construction is incremental per query (AddQuery); motif status
/// is evaluated lazily against the support threshold, so the same structure
/// serves evolving workloads.
class Tpstry {
 public:
  /// `calc` must outlive the trie. `support_threshold` is the paper's T as a
  /// ratio of total workload frequency (default 40%).
  Tpstry(const signature::SignatureCalculator* calc, double support_threshold);

  /// Indexes every connected sub-graph of `q`, merging isomorphic (by
  /// signature) sub-graphs across queries, and adds `frequency` to the
  /// support of each distinct sub-graph of q. Requires q connected with
  /// 1..kMaxQueryEdges edges.
  void AddQuery(const graph::PatternGraph& q, double frequency);

  /// Scales every node's support (and the normalising total) by `factor` in
  /// (0, 1]. Combined with AddQuery this implements the paper's Sec. 6
  /// "workload change over time": exponential decay of old query mass, so a
  /// drifting workload Q smoothly promotes/demotes motifs without rebuilding
  /// the trie. Nodes themselves are never removed (they are tiny and may
  /// regain support later).
  void DecaySupports(double factor);

  /// Total frequency over all added queries (supports are normalised by it).
  double total_frequency() const { return total_frequency_; }

  double support_threshold() const { return support_threshold_; }
  void set_support_threshold(double t) { support_threshold_ = t; }

  /// Number of nodes including the root.
  size_t NumNodes() const { return nodes_.size(); }

  const TpsNode& node(uint32_t id) const { return nodes_[id]; }

  /// support / total_frequency, in [0, 1]. Root reports 1.
  double NormalizedSupport(uint32_t id) const;

  /// True for non-root nodes whose normalised support meets the threshold.
  bool IsMotif(uint32_t id) const;

  /// All motif node ids (ascending).
  std::vector<uint32_t> MotifIds() const;

  /// Edge count of the largest motif (0 if no motifs). Useful for window
  /// sizing and bounding match growth.
  uint32_t MaxMotifEdges() const;

  /// Node with exactly this signature, or nullptr.
  const TpsNode* FindBySignature(const signature::Signature& sig) const;

  /// Single-edge *motif* whose signature equals `sig`, or nullptr. The
  /// stream matcher's admission test (Sec. 3): an arriving edge that matches
  /// no single-edge motif can never join any motif match.
  const TpsNode* FindSingleEdgeMotif(const signature::Signature& sig) const;

  /// Motif child c of `node_id` with c.sig == node.sig + delta (as
  /// multisets), or nullptr. The child test of Alg. 2 (lines 7 and 15).
  const TpsNode* FindMotifChild(uint32_t node_id,
                                const signature::FactorDelta& delta) const;

  /// Mask over label ids: true where the label occurs in at least one motif
  /// (equivalently, in a single-edge motif — every motif's labels appear in
  /// its single-edge ancestors). Vertices with unmasked labels can never be
  /// part of any motif match.
  std::vector<bool> MotifLabelMask(size_t num_labels) const;

  /// Multi-line dump (supports + motif flags) for debugging, using
  /// `registry` for label names.
  std::string Dump(const graph::LabelRegistry& registry) const;

 private:
  uint32_t FindOrCreateNode(const signature::Signature& sig,
                            const graph::PatternGraph& rep, uint32_t num_edges);
  void Link(uint32_t parent, uint32_t child);

  const signature::SignatureCalculator* calc_;
  double support_threshold_;
  double total_frequency_ = 0.0;
  std::vector<TpsNode> nodes_;
  std::unordered_map<signature::Signature, uint32_t, signature::SignatureHash>
      by_signature_;
};

}  // namespace tpstry
}  // namespace loom

#endif  // LOOM_TPSTRY_TPSTRY_H_
