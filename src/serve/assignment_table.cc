#include "serve/assignment_table.h"

namespace loom {
namespace serve {

AssignmentTable::~AssignmentTable() {
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

void AssignmentTable::Publish(graph::VertexId v, graph::PartitionId p) {
  std::atomic<Chunk*>& dir = chunks_[v >> kChunkBits];
  Chunk* chunk = dir.load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    for (auto& slot : *chunk) {
      slot.store(graph::kNoPartition, std::memory_order_relaxed);
    }
    // Single writer: no CAS race to lose. Release so readers that see the
    // pointer see the kNoPartition fill.
    dir.store(chunk, std::memory_order_release);
  }
  std::atomic<graph::PartitionId>& slot = (*chunk)[v & (kChunkSlots - 1)];
  if (slot.load(std::memory_order_relaxed) == graph::kNoPartition &&
      p != graph::kNoPartition) {
    assigned_.fetch_add(1, std::memory_order_relaxed);
  }
  slot.store(p, std::memory_order_release);
}

}  // namespace serve
}  // namespace loom
