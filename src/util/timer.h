// Wall-clock timing helpers for the evaluation harness (Table 2 etc.).

#ifndef LOOM_UTIL_TIMER_H_
#define LOOM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace loom {
namespace util {

/// Monotonic stopwatch. Start() resets; ElapsedMs()/ElapsedUs() read without
/// stopping, so a single timer can bracket multiple phases.
class Timer {
 public:
  Timer() { Start(); }

  /// Resets the reference point to now.
  void Start();

  /// Microseconds since Start().
  int64_t ElapsedUs() const;

  /// Milliseconds (floating) since Start().
  double ElapsedMs() const;

  /// Seconds (floating) since Start().
  double ElapsedSeconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_TIMER_H_
