#include "tpstry/subgraph_enumerator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>

namespace loom {
namespace tpstry {

bool IsConnectedSubset(const graph::PatternGraph& g, EdgeMask mask) {
  if (mask == 0) return false;
  // Union-find over the endpoints of the selected edges.
  const size_t n = g.NumVertices();
  std::vector<graph::VertexId> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<graph::VertexId>(i);
  auto find = [&](graph::VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  size_t touched_edges = 0;
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    if (!(mask & (EdgeMask{1} << e))) continue;
    ++touched_edges;
    graph::VertexId a = find(g.edge(static_cast<graph::EdgeId>(e)).u);
    graph::VertexId b = find(g.edge(static_cast<graph::EdgeId>(e)).v);
    if (a != b) parent[a] = b;
  }
  // Connected iff all selected edges' endpoints share one component:
  // count distinct roots among touched vertices.
  graph::VertexId root = graph::kInvalidVertex;
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    if (!(mask & (EdgeMask{1} << e))) continue;
    for (graph::VertexId v :
         {g.edge(static_cast<graph::EdgeId>(e)).u, g.edge(static_cast<graph::EdgeId>(e)).v}) {
      graph::VertexId r = find(v);
      if (root == graph::kInvalidVertex) root = r;
      else if (r != root) return false;
    }
  }
  return touched_edges > 0;
}

std::vector<EdgeMask> ConnectedEdgeSubsets(const graph::PatternGraph& g) {
  const size_t m = g.NumEdges();
  assert(m <= kMaxQueryEdges && "query graph too large for trie construction");
  std::vector<EdgeMask> out;
  const EdgeMask limit = m >= 32 ? ~EdgeMask{0} : ((EdgeMask{1} << m) - 1);
  for (EdgeMask mask = 1; mask <= limit; ++mask) {
    if (IsConnectedSubset(g, mask)) out.push_back(mask);
    if (mask == limit) break;  // avoid overflow wrap when limit == max
  }
  std::sort(out.begin(), out.end(), [](EdgeMask a, EdgeMask b) {
    int pa = std::popcount(a), pb = std::popcount(b);
    return pa != pb ? pa < pb : a < b;
  });
  return out;
}

graph::PatternGraph SubgraphFromMask(const graph::PatternGraph& g, EdgeMask mask) {
  graph::PatternGraph sub;
  std::map<graph::VertexId, graph::VertexId> remap;  // ordered: stable ids
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    if (!(mask & (EdgeMask{1} << e))) continue;
    const graph::Edge& edge = g.edge(static_cast<graph::EdgeId>(e));
    remap.emplace(edge.u, graph::kInvalidVertex);
    remap.emplace(edge.v, graph::kInvalidVertex);
  }
  for (auto& [orig, fresh] : remap) fresh = sub.AddVertex(g.label(orig));
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    if (!(mask & (EdgeMask{1} << e))) continue;
    const graph::Edge& edge = g.edge(static_cast<graph::EdgeId>(e));
    sub.AddEdge(remap[edge.u], remap[edge.v]);
  }
  return sub;
}

}  // namespace tpstry
}  // namespace loom
