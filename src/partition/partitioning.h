// k-way vertex-centric partition state (Sec. 1.3).
//
// Every vertex lives in exactly one partition (no replication, per the
// paper). Streaming partitioners assign vertices when the first edge
// containing them is placed; the capacity constraint C = ν·n/k (ν = 1.1,
// emulating Fennel's max imbalance) is enforced here so no heuristic can
// overfill a partition.

#ifndef LOOM_PARTITION_PARTITIONING_H_
#define LOOM_PARTITION_PARTITIONING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "io/checkpoint.h"

namespace loom {
namespace partition {

class Partitioning {
 public:
  /// `k` partitions for an expected `expected_vertices` total, allowing
  /// each partition to grow to ceil(nu * n / k).
  Partitioning(uint32_t k, size_t expected_vertices, double nu = 1.1);

  uint32_t k() const { return k_; }

  /// Hard per-partition vertex capacity C.
  size_t Capacity() const { return capacity_; }

  /// Partition of v, or kNoPartition.
  graph::PartitionId PartitionOf(graph::VertexId v) const {
    return v < assignment_.size() ? assignment_[v] : graph::kNoPartition;
  }

  bool IsAssigned(graph::VertexId v) const {
    return PartitionOf(v) != graph::kNoPartition;
  }

  /// The raw per-vertex assignment table (indexed by VertexId; entries are
  /// kNoPartition until assigned, vertices beyond the table are implicitly
  /// unassigned). The util::simd gather/tally kernels read this directly.
  std::span<const graph::PartitionId> assignments() const {
    return assignment_;
  }

  /// Assigns v to `p` if there is room, otherwise to the least-loaded
  /// partition (which always has room given capacity >= n/k). Re-assigning
  /// an already-assigned vertex is a no-op returning its current partition.
  /// Returns the partition actually used.
  graph::PartitionId Assign(graph::VertexId v, graph::PartitionId p);

  /// True if partition p has reached capacity.
  bool AtCapacity(graph::PartitionId p) const { return sizes_[p] >= capacity_; }

  /// |V(Si)| — vertices currently in partition p.
  size_t Size(graph::PartitionId p) const { return sizes_[p]; }

  /// Sizes of all partitions.
  const std::vector<size_t>& sizes() const { return sizes_; }

  /// Smallest / largest partition size (paper's Smin for Eq. 2).
  size_t MinSize() const;
  size_t MaxSize() const;

  /// Partition with the fewest vertices (lowest id on ties).
  graph::PartitionId LeastLoaded() const;

  /// Vertices assigned so far.
  size_t NumAssigned() const { return num_assigned_; }

  /// Writes the full table state as checkpoint section "partition".
  void SaveTo(io::CheckpointWriter* w) const;

  /// Restores a SaveTo snapshot into this instance. k and capacity must
  /// match how this instance was constructed (a k/ν/n drift would silently
  /// change every later capacity decision); mismatches throw via r->Fail.
  void LoadFrom(io::CheckpointReader* r);

 private:
  uint32_t k_;
  size_t capacity_;
  std::vector<graph::PartitionId> assignment_;  // indexed by VertexId
  std::vector<size_t> sizes_;
  size_t num_assigned_ = 0;
};

}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_PARTITIONING_H_
