#include "eval/experiment.h"

#include <cassert>

#include "partition/partition_metrics.h"
#include "query/workload_runner.h"

namespace loom {
namespace eval {

std::string ToString(System s) {
  switch (s) {
    case System::kHash: return "hash";
    case System::kLdg: return "ldg";
    case System::kFennel: return "fennel";
    case System::kLoom: return "loom";
  }
  return "?";
}

std::vector<System> AllSystems() {
  return {System::kHash, System::kLdg, System::kFennel, System::kLoom};
}

uint64_t HashAssignment(const partition::Partitioning& p,
                        size_t num_vertices) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (graph::VertexId v = 0; v < num_vertices; ++v) {
    h ^= static_cast<uint64_t>(p.PartitionOf(v)) + 0x9e37 + v;
    h *= 0x100000001b3ULL;
  }
  return h;
}

const SystemResult* ComparisonResult::Find(System s) const {
  for (const SystemResult& r : systems) {
    if (r.system == s) return &r;
  }
  return nullptr;
}

engine::EngineOptions ToEngineOptions(const ExperimentConfig& config,
                                      const datasets::Dataset& ds) {
  engine::EngineOptions o;
  o.k = config.k;
  o.expected_vertices = ds.NumVertices();
  o.expected_edges = ds.NumEdges();
  o.window_size = config.window_size;
  o.support_threshold = config.support_threshold;
  o.alpha = config.equal_opportunism.alpha;
  o.balance_b = config.equal_opportunism.balance_b;
  o.neighbor_bid_weight = config.equal_opportunism.neighbor_bid_weight;
  o.disable_rationing = config.equal_opportunism.disable_rationing;
  return o;
}

std::unique_ptr<partition::Partitioner> MakePartitioner(
    System system, const datasets::Dataset& ds,
    const ExperimentConfig& config) {
  std::string error;
  const engine::BuildContext context{&ds.workload, ds.registry.size()};
  std::unique_ptr<partition::Partitioner> p =
      engine::PartitionerRegistry::Global().Create(
          ToString(system), ToEngineOptions(config, ds), context, &error);
  assert(p != nullptr && error.empty());
  return p;
}

namespace {

SystemResult RunWithPartitioner(std::unique_ptr<partition::Partitioner> p,
                                System system, const datasets::Dataset& ds,
                                engine::EdgeSource& source,
                                const ExperimentConfig& config,
                                bool run_queries) {
  SystemResult result;
  result.system = system;
  result.label = p->name();
  source.Reset();
  // The timed region is the whole batched drive, so producing the stream
  // (lazy synthesis or replay copy) counts as ingest wall-time — the
  // honest number for a *streaming* partitioner, and within run-to-run
  // noise of the pre-facade loop even for the hash baseline.
  const engine::DriveResult driven = engine::Drive(p.get(), &source);
  result.partition_ms = driven.ms;
  result.ms_per_10k_edges =
      driven.edges == 0 ? 0.0
                        : result.partition_ms * 10000.0 /
                              static_cast<double>(driven.edges);

  result.edges_per_sec = result.partition_ms > 0.0
                             ? 1000.0 * static_cast<double>(driven.edges) /
                                   result.partition_ms
                             : 0.0;

  const partition::Partitioning& partitioning = p->partitioning();
  result.edge_cut = partition::EdgeCut(ds.graph, partitioning);
  result.imbalance = partition::Imbalance(partitioning);
  result.assignment_hash = HashAssignment(partitioning, ds.NumVertices());
  if (const auto* loom = dynamic_cast<const core::LoomPartitioner*>(p.get())) {
    result.match_allocs_fresh = loom->match_pool().fresh_allocations();
    result.match_allocs_reused = loom->match_pool().reused_allocations();
  }

  if (run_queries) {
    query::WorkloadResult wr = query::RunWorkload(ds.graph, partitioning,
                                                  ds.workload, config.executor);
    result.weighted_ipt = wr.weighted_ipt;
    result.matches = wr.total_matches;
  }
  return result;
}

SystemResult RunCommon(System system, const datasets::Dataset& ds,
                       engine::EdgeSource& source,
                       const ExperimentConfig& config, bool run_queries) {
  return RunWithPartitioner(MakePartitioner(system, ds, config), system, ds,
                            source, config, run_queries);
}

}  // namespace

SystemResult RunSystem(System system, const datasets::Dataset& ds,
                       engine::EdgeSource& source,
                       const ExperimentConfig& config) {
  return RunCommon(system, ds, source, config, /*run_queries=*/true);
}

SystemResult RunSystem(System system, const datasets::Dataset& ds,
                       const stream::EdgeStream& es,
                       const ExperimentConfig& config) {
  engine::EdgeStreamSource source(es);
  return RunCommon(system, ds, source, config, /*run_queries=*/true);
}

SystemResult RunSystemTimingOnly(System system, const datasets::Dataset& ds,
                                 engine::EdgeSource& source,
                                 const ExperimentConfig& config) {
  return RunCommon(system, ds, source, config, /*run_queries=*/false);
}

SystemResult RunSystemTimingOnly(System system, const datasets::Dataset& ds,
                                 const stream::EdgeStream& es,
                                 const ExperimentConfig& config) {
  engine::EdgeStreamSource source(es);
  return RunCommon(system, ds, source, config, /*run_queries=*/false);
}

std::optional<SystemResult> RunBackendTimingOnly(const std::string& spec,
                                                 const datasets::Dataset& ds,
                                                 engine::EdgeSource& source,
                                                 const ExperimentConfig& config,
                                                 std::string* error) {
  const engine::BuildContext context{&ds.workload, ds.registry.size()};
  std::unique_ptr<partition::Partitioner> p = engine::BuildPartitioner(
      spec, ToEngineOptions(config, ds), context, error);
  if (p == nullptr) return std::nullopt;

  System system = System::kHash;
  for (System s : AllSystems()) {
    if (ToString(s) == p->name()) system = s;
  }
  SystemResult result = RunWithPartitioner(std::move(p), system, ds, source,
                                           config, /*run_queries=*/false);
  result.label = spec;
  return result;
}

ComparisonResult RunComparison(const datasets::Dataset& ds,
                               const ExperimentConfig& config) {
  ComparisonResult out;
  out.dataset = ds.meta.name;
  out.order = config.order;
  out.k = config.k;

  // Pull-based: the arrival permutation is computed once; each system
  // replays it lazily (no materialised StreamEdge vector).
  std::unique_ptr<engine::EdgeSource> source =
      engine::MakeEdgeSource(ds, config.order, config.stream_seed);
  out.stream_edges = source->SizeHint();

  double hash_ipt = 0.0;
  for (System s : AllSystems()) {
    SystemResult r = RunSystem(s, ds, *source, config);
    if (s == System::kHash) hash_ipt = r.weighted_ipt;
    out.systems.push_back(r);
  }
  for (SystemResult& r : out.systems) {
    r.ipt_vs_hash = hash_ipt > 0.0 ? r.weighted_ipt / hash_ipt
                                   : (r.weighted_ipt > 0.0 ? 1.0 : 0.0);
  }
  return out;
}

}  // namespace eval
}  // namespace loom
