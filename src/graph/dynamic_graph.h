// Incrementally growable labelled graph.
//
// Streaming partitioners (LDG, Fennel, Loom) see the graph one edge at a
// time; heuristics like "number of neighbours already in partition S" need
// the adjacency of the streamed-so-far prefix. DynamicGraph provides that:
// O(1) amortised edge insertion, label assignment on first sight of a
// vertex, and neighbour iteration. Adjacency lives in a chunk-stable
// AdjacencyArena (see graph/adjacency_arena.h): no per-vertex heap
// allocation, and published neighbour pages never move — the property the
// overlapped sharded pipeline needs to read while a writer appends.

#ifndef LOOM_GRAPH_DYNAMIC_GRAPH_H_
#define LOOM_GRAPH_DYNAMIC_GRAPH_H_

#include <vector>

#include "graph/adjacency_arena.h"
#include "graph/neighbor_view.h"
#include "graph/types.h"
#include "io/checkpoint.h"

namespace loom {
namespace graph {

/// Adjacency-list labelled graph supporting online edge insertion. Vertex
/// ids are externally assigned (dense in practice: dataset generators number
/// vertices 0..n-1); the structure grows to accommodate the largest id seen.
/// Implements NeighborView so the LDG/equal-opportunism scoring cores can
/// also run over substituted views (see graph/neighbor_view.h); `final` so
/// direct callers keep devirtualised, inlinable Neighbors() scans.
class DynamicGraph final : public NeighborView {
 public:
  DynamicGraph() = default;

  /// Optionally pre-sizes internal arrays for `n` vertices.
  /// `page_entries` caps the arena's page capacity (0 = the LOOM_ADJ_PAGE
  /// environment default, normally 64; layout-only — neighbour order and
  /// every derived score are identical for any page size).
  /// `expected_entries` pre-carves arena slab storage for that many
  /// adjacency entries (2m for m undirected edges; 0 = allocate on
  /// demand) — an allocation hint only, never affecting layout or the
  /// checkpoint encoding (AdjacencyArena::ReserveEntries).
  explicit DynamicGraph(size_t n, uint32_t page_entries = 0,
                        uint64_t expected_entries = 0)
      : arena_(page_entries) {
    Reserve(n);
    arena_.ReserveEntries(expected_entries);
  }

  void Reserve(size_t n);

  /// Records vertex `v` with `label`. Idempotent; relabeling an existing
  /// vertex with a different label is a programming error (asserted).
  void TouchVertex(VertexId v, LabelId label);

  /// Inserts undirected edge (u,v); both endpoints must have been touched.
  /// Duplicate edges are permitted (callers dedupe upstream if needed).
  /// Self-loops are canonicalised to a SINGLE adjacency entry (u appears
  /// once in its own list, degree 1) — the io/engine ingest layers reject
  /// them outright, so this is defence in depth for direct API users; all
  /// backends see the same canonical form (pinned by the self-loop
  /// differential test).
  void AddEdge(VertexId u, VertexId v);

  /// Number of vertex slots (max touched id + 1; untouched slots have
  /// kInvalidLabel and degree 0).
  size_t NumSlots() const { return labels_.size(); }

  /// Number of vertices actually touched.
  size_t NumVertices() const { return num_vertices_; }

  /// Number of inserted edges.
  size_t NumEdges() const { return num_edges_; }

  bool Known(VertexId v) const {
    return v < labels_.size() && labels_[v] != kInvalidLabel;
  }

  LabelId label(VertexId v) const { return labels_[v]; }

  NeighborRange Neighbors(VertexId v) const override {
    return arena_.Neighbors(v);
  }

  size_t Degree(VertexId v) const override { return arena_.Degree(v); }

  /// Writes the graph as checkpoint section `name` (labels, adjacency in
  /// insertion order — neighbour order feeds scoring, so it must survive).
  /// Byte-identical to the pre-arena vector-of-vectors encoding.
  void SaveTo(io::CheckpointWriter* w, std::string_view name) const;

  /// Restores a SaveTo snapshot; requires this graph to be empty. The
  /// stored num_vertices/num_edges counters are VALIDATED against the
  /// loaded label and adjacency tables (label count, degree sum, entry
  /// bounds) — a hand-edited or checksum-colliding file fails with an
  /// actionable error instead of silently desyncing stats.
  void LoadFrom(io::CheckpointReader* r, std::string_view name);

 private:
  std::vector<LabelId> labels_;
  AdjacencyArena arena_;
  size_t num_vertices_ = 0;
  size_t num_edges_ = 0;
};

}  // namespace graph
}  // namespace loom

#endif  // LOOM_GRAPH_DYNAMIC_GRAPH_H_
