// Per-decision latency profiling over the engine's own event stream.
//
// ROADMAP item 5's last rung: regressions in the ingest hot path should be
// visible per-decision, not only as end-to-end eps. engine::Drive and
// Session::IngestSome fire a BatchEvent (edge count + wall ns) after every
// IngestBatch call; this observer folds those into a lock-free log2
// histogram of nanoseconds-per-edge. Each edge in a batch contributes one
// sample at the batch's mean cost, so quantiles are per-DECISION (drive
// with batch_size=1 for exact per-edge timing; the default batches trade
// sample resolution for ingest speed, as everywhere else in the engine).
//
// The histogram is readable from any thread while recording continues —
// loom_serve's STATS reply and loom_partition --progress both read it live.

#ifndef LOOM_ENGINE_LATENCY_OBSERVER_H_
#define LOOM_ENGINE_LATENCY_OBSERVER_H_

#include "engine/observer.h"
#include "util/histogram.h"

namespace loom {
namespace engine {

class LatencyObserver : public EngineObserver {
 public:
  void OnBatch(const BatchEvent& e) override {
    if (e.edges == 0) return;
    histogram_.Add(e.ns / e.edges, e.edges);
  }

  /// Live histogram of ns-per-edge decision latency; Snapshot() it from any
  /// thread.
  const util::Histogram& histogram() const { return histogram_; }

  void Reset() { histogram_.Reset(); }

 private:
  util::Histogram histogram_;
};

}  // namespace engine
}  // namespace loom

#endif  // LOOM_ENGINE_LATENCY_OBSERVER_H_
