#include "motif/match_list.h"

namespace loom {
namespace motif {

bool MatchList::Add(const MatchPtr& m) {
  const uint64_t key = m->Key();
  if (!live_keys_.insert(key).second) return false;
  for (graph::VertexId v : m->vertices) by_vertex_[v].push_back(m);
  for (graph::EdgeId e : m->edges) by_edge_[e].push_back(m);
  ++live_count_;
  ++total_added_;
  return true;
}

std::vector<MatchPtr> MatchList::LiveAt(graph::VertexId v) const {
  std::vector<MatchPtr> out;
  auto it = by_vertex_.find(v);
  if (it == by_vertex_.end()) return out;
  out.reserve(it->second.size());
  for (const MatchPtr& m : it->second) {
    if (m->alive) out.push_back(m);
  }
  return out;
}

bool MatchList::HasLiveAt(graph::VertexId v) const {
  auto it = by_vertex_.find(v);
  if (it == by_vertex_.end()) return false;
  for (const MatchPtr& m : it->second) {
    if (m->alive) return true;
  }
  return false;
}

std::vector<MatchPtr> MatchList::LiveWithEdge(graph::EdgeId e) const {
  std::vector<MatchPtr> out;
  auto it = by_edge_.find(e);
  if (it == by_edge_.end()) return out;
  out.reserve(it->second.size());
  for (const MatchPtr& m : it->second) {
    if (m->alive) out.push_back(m);
  }
  return out;
}

void MatchList::RemoveMatchesWithEdge(graph::EdgeId e) {
  auto it = by_edge_.find(e);
  if (it == by_edge_.end()) return;
  for (const MatchPtr& m : it->second) {
    if (m->alive) {
      m->alive = false;
      live_keys_.erase(m->Key());
      --live_count_;
    }
  }
  by_edge_.erase(it);
}

void MatchList::Compact() {
  for (auto it = by_vertex_.begin(); it != by_vertex_.end();) {
    auto& vec = it->second;
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [](const MatchPtr& m) { return !m->alive; }),
              vec.end());
    if (vec.empty()) {
      it = by_vertex_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = by_edge_.begin(); it != by_edge_.end();) {
    auto& vec = it->second;
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [](const MatchPtr& m) { return !m->alive; }),
              vec.end());
    if (vec.empty()) {
      it = by_edge_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace motif
}  // namespace loom
