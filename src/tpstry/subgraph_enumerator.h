// Enumeration of all connected edge-subsets of a (small) query graph.
//
// Alg. 1 of the paper recursively "rebuilds" each query graph edge-by-edge
// from every starting edge; the set of sub-graphs it touches is exactly the
// set of connected edge subsets. We enumerate those directly as bitmasks —
// the result (and the TPSTry++ built from it) is identical, with simpler
// de-duplication. Query graphs are tiny ("of the order of 10 edges"), so
// 2^|Eq| enumeration is cheap; we enforce |Eq| <= kMaxQueryEdges.

#ifndef LOOM_TPSTRY_SUBGRAPH_ENUMERATOR_H_
#define LOOM_TPSTRY_SUBGRAPH_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/pattern_graph.h"

namespace loom {
namespace tpstry {

/// Largest supported query size (in edges) for trie construction.
inline constexpr size_t kMaxQueryEdges = 20;

/// An edge subset of a pattern graph, as a bitmask over its edge ids.
using EdgeMask = uint32_t;

/// Returns every non-empty, connected edge subset of `g`, sorted by
/// ascending popcount (so parents enumerate before children). Requires
/// g.NumEdges() <= kMaxQueryEdges.
std::vector<EdgeMask> ConnectedEdgeSubsets(const graph::PatternGraph& g);

/// True if the edges selected by `mask` form a connected sub-graph
/// (single-edge masks are connected; the empty mask is not).
bool IsConnectedSubset(const graph::PatternGraph& g, EdgeMask mask);

/// The pattern sub-graph induced by `mask`, with vertices renumbered densely
/// in ascending original-id order. Labels are preserved.
graph::PatternGraph SubgraphFromMask(const graph::PatternGraph& g, EdgeMask mask);

}  // namespace tpstry
}  // namespace loom

#endif  // LOOM_TPSTRY_SUBGRAPH_ENUMERATOR_H_
