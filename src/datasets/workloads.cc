#include "datasets/workloads.h"

#include "graph/pattern_graph.h"

namespace loom {
namespace datasets {

using graph::PatternGraph;

query::Workload DblpWorkload(graph::LabelRegistry* reg) {
  query::Workload w;
  const graph::LabelId author = reg->Intern("Author");
  const graph::LabelId paper = reg->Intern("Paper");
  const graph::LabelId venue = reg->Intern("Venue");

  // Potential collaboration: two authors of one paper.
  w.Add("coauthor", PatternGraph::Path({author, paper, author}), 0.40);
  // Citation chain: paper citing a paper citing a paper.
  w.Add("citation-chain", PatternGraph::Path({paper, paper, paper}), 0.25);
  // Where does an author publish.
  w.Add("author-venue", PatternGraph::Path({author, paper, venue}), 0.20);
  // Indirect collaboration via a cited paper.
  w.Add("indirect-collab", PatternGraph::Path({author, paper, paper, author}),
        0.15);
  return w;
}

query::Workload ProvGenWorkload(graph::LabelRegistry* reg) {
  query::Workload w;
  const graph::LabelId entity = reg->Intern("Entity");
  const graph::LabelId activity = reg->Intern("Activity");
  const graph::LabelId agent = reg->Intern("Agent");

  // Direct derivation: entity derived from entity through one activity.
  w.Add("derivation", PatternGraph::Path({entity, activity, entity}), 0.50);
  // Attribution: who produced this entity version.
  w.Add("attribution", PatternGraph::Path({entity, activity, agent}), 0.30);
  // Two-step lineage (regular path query over the revision chain).
  w.Add("lineage-2",
        PatternGraph::Path({entity, activity, entity, activity, entity}), 0.20);
  return w;
}

query::Workload MusicBrainzWorkload(graph::LabelRegistry* reg) {
  query::Workload w;
  const graph::LabelId artist = reg->Intern("Artist");
  const graph::LabelId album = reg->Intern("Album");
  const graph::LabelId label = reg->Intern("Label");
  const graph::LabelId recording = reg->Intern("Recording");
  const graph::LabelId work = reg->Intern("Work");

  // Potential collaboration: two artists credited on one recording — the
  // dominant query (the paper's Sec. 1 motivates exactly this pattern;
  // MusicBrainz expresses collaboration through recording credits).
  w.Add("collaboration", PatternGraph::Path({artist, recording, artist}), 0.50);
  // Label mates: artist and the label publishing their album.
  w.Add("label-mates", PatternGraph::Path({artist, album, label}), 0.25);
  // Work lineage: which work an album's recording captures.
  w.Add("work-of", PatternGraph::Path({album, recording, work}), 0.15);
  // Shared label: two albums under one label.
  w.Add("shared-label", PatternGraph::Path({album, label, album}), 0.10);
  return w;
}

query::Workload LubmWorkload(graph::LabelRegistry* reg) {
  query::Workload w;
  const graph::LabelId full_prof = reg->Intern("FullProfessor");
  const graph::LabelId grad = reg->Intern("GraduateStudent");
  const graph::LabelId course = reg->Intern("GraduateCourse");
  const graph::LabelId publication = reg->Intern("Publication");
  const graph::LabelId department = reg->Intern("Department");
  const graph::LabelId university = reg->Intern("University");

  // Co-authorship between faculty and their students — the dominant query.
  w.Add("coauthor", PatternGraph::Path({full_prof, publication, grad}), 0.45);
  // LUBM Q2-flavour: students taking a course taught by a professor.
  w.Add("prof-course-student", PatternGraph::Path({full_prof, course, grad}),
        0.25);
  // Organisation drill-down.
  w.Add("membership", PatternGraph::Path({grad, department, university}), 0.20);
  // Colleagues: two professors of one department.
  w.Add("colleagues", PatternGraph::Path({full_prof, department, full_prof}),
        0.10);
  return w;
}

query::Workload Figure1Workload(graph::LabelRegistry* reg) {
  query::Workload w;
  const graph::LabelId a = reg->Intern("a");
  const graph::LabelId b = reg->Intern("b");
  const graph::LabelId c = reg->Intern("c");
  const graph::LabelId d = reg->Intern("d");

  // q1: the a-b-a-b square (4 edges), 30%.
  w.Add("q1", PatternGraph::Cycle({a, b, a, b}), 0.30);
  // q2: a-b-c path, 60%.
  w.Add("q2", PatternGraph::Path({a, b, c}), 0.60);
  // q3: a-b-c-d path, 10%.
  w.Add("q3", PatternGraph::Path({a, b, c, d}), 0.10);
  return w;
}

}  // namespace datasets
}  // namespace loom
