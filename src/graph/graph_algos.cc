#include "graph/graph_algos.h"

#include <algorithm>
#include <deque>
#include <numeric>

namespace loom {
namespace graph {

namespace {

// Shared skeleton for BFS/DFS edge discovery. `lifo` selects stack vs queue.
std::vector<EdgeId> SearchEdgeOrder(const LabeledGraph& g, bool lifo) {
  const size_t n = g.NumVertices();
  std::vector<EdgeId> order;
  order.reserve(g.NumEdges());
  std::vector<bool> edge_seen(g.NumEdges(), false);
  std::vector<bool> vertex_seen(n, false);
  std::deque<VertexId> frontier;

  for (VertexId root = 0; root < n; ++root) {
    if (vertex_seen[root]) continue;
    vertex_seen[root] = true;
    frontier.push_back(root);
    while (!frontier.empty()) {
      VertexId v;
      if (lifo) {
        v = frontier.back();
        frontier.pop_back();
      } else {
        v = frontier.front();
        frontier.pop_front();
      }
      auto nbrs = g.Neighbors(v);
      auto eids = g.IncidentEdges(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        EdgeId eid = eids[i];
        if (!edge_seen[eid]) {
          edge_seen[eid] = true;
          order.push_back(eid);
        }
        VertexId w = nbrs[i];
        if (!vertex_seen[w]) {
          vertex_seen[w] = true;
          frontier.push_back(w);
        }
      }
    }
  }
  return order;
}

}  // namespace

std::vector<EdgeId> BfsEdgeOrder(const LabeledGraph& g) {
  return SearchEdgeOrder(g, /*lifo=*/false);
}

std::vector<EdgeId> DfsEdgeOrder(const LabeledGraph& g) {
  return SearchEdgeOrder(g, /*lifo=*/true);
}

std::vector<EdgeId> RandomEdgeOrder(const LabeledGraph& g, util::Rng* rng) {
  std::vector<EdgeId> order(g.NumEdges());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  return order;
}

std::vector<uint32_t> ConnectedComponents(const LabeledGraph& g,
                                          size_t* num_components) {
  const size_t n = g.NumVertices();
  std::vector<uint32_t> comp(n, static_cast<uint32_t>(-1));
  uint32_t next = 0;
  std::vector<VertexId> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (comp[root] != static_cast<uint32_t>(-1)) continue;
    comp[root] = next;
    stack.push_back(root);
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      for (VertexId w : g.Neighbors(v)) {
        if (comp[w] == static_cast<uint32_t>(-1)) {
          comp[w] = next;
          stack.push_back(w);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

LabeledGraph DropIsolatedVertices(const LabeledGraph& g) {
  std::vector<VertexId> remap(g.NumVertices(), kInvalidVertex);
  LabeledGraph::Builder b;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) > 0) remap[v] = b.AddVertex(g.label(v));
  }
  for (const Edge& e : g.edges()) b.AddEdge(remap[e.u], remap[e.v]);
  return b.Build();
}

DegreeStats ComputeDegreeStats(const LabeledGraph& g) {
  DegreeStats s;
  const size_t n = g.NumVertices();
  if (n == 0) return s;
  s.min = g.Degree(0);
  size_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    size_t d = g.Degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    total += d;
  }
  s.mean = static_cast<double>(total) / static_cast<double>(n);
  return s;
}

}  // namespace graph
}  // namespace loom
