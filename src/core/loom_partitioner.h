// Loom: the query-aware streaming partitioner (the paper's primary
// contribution, Secs. 2-4 composed).
//
// Pipeline per arriving edge e:
//   1. Admission (Sec. 3): if e matches no single-edge motif it can never be
//      part of a motif match — assign it immediately with the LDG heuristic
//      and do not buffer it.
//   2. Otherwise push e into the sliding window Ptemp and run the Alg. 2
//      matcher to register every new motif match e creates.
//   3. While the window exceeds its capacity t, evict the oldest edge: fetch
//      the cluster of matches containing it, let equal opportunism pick the
//      winning partition and the support-ordered prefix of matches it takes,
//      assign all of those matches' edges (and their endpoints) there, and
//      retire every match that lost a constituent edge.
// Finalize() drains the window the same way.

#ifndef LOOM_CORE_LOOM_PARTITIONER_H_
#define LOOM_CORE_LOOM_PARTITIONER_H_

#include <memory>
#include <string>

#include "core/equal_opportunism.h"
#include "graph/dynamic_graph.h"
#include "graph/label_registry.h"
#include "motif/match_list.h"
#include "motif/motif_matcher.h"
#include "partition/ldg_partitioner.h"
#include "partition/partitioner.h"
#include "query/query.h"
#include "signature/label_values.h"
#include "signature/signature_calculator.h"
#include "stream/sliding_window.h"
#include "tpstry/tpstry.h"

namespace loom {
namespace core {

/// All Loom knobs, with the paper's defaults.
struct LoomOptions {
  partition::PartitionerConfig base;

  /// Sliding window size t (paper default 10k edges).
  size_t window_size = 10000;

  /// Motif support threshold T (paper default 40%).
  double support_threshold = 0.4;

  /// Finite-field prime p for signatures (paper: 251).
  uint32_t prime = signature::kDefaultPrime;

  /// Seed for the label -> random value assignment.
  uint64_t signature_seed = 0xC0FFEE;

  EqualOpportunismConfig equal_opportunism;
  motif::MatcherConfig matcher;

  /// Compact the matchList every this many admitted edges.
  size_t compact_interval = 1024;
};

/// Counters exposed for reports and tests.
struct LoomStats {
  uint64_t edges_ingested = 0;
  uint64_t edges_bypassed = 0;      // failed the admission test
  uint64_t edges_via_window = 0;    // assigned on eviction
  uint64_t clusters_allocated = 0;  // equal-opportunism decisions
  uint64_t cluster_edges_assigned = 0;
};

/// Appends the Loom decision pipeline's deterministic end-of-run counters
/// (match-pool fresh/reused, matcher totals) in their canonical key order.
/// Shared by "loom" and "loom-sharded" so their FinalStatsEvent keys can
/// never drift apart.
void FillLoomFinalStats(const motif::MatchPool& pool,
                        const motif::MatcherStats& matcher,
                        engine::FinalStatsEvent* stats);

class LoomPartitioner : public partition::Partitioner {
 public:
  /// Builds the TPSTry++ from `workload` (frequencies are normalised
  /// internally) over a label space of `num_labels`.
  LoomPartitioner(const LoomOptions& options, const query::Workload& workload,
                  size_t num_labels);

  void Ingest(const stream::StreamEdge& e) override;
  /// Batch entry point: hoists the admission-mask probe (memoised per label
  /// pair) for the whole batch before running the per-edge pipeline, so the
  /// admission memo is walked in one tight pass. Results are bit-identical
  /// to per-edge Ingest.
  void IngestBatch(std::span<const stream::StreamEdge> batch) override;
  void Finalize() override;
  void FillProgress(engine::ProgressEvent* progress) const override;
  /// Match-pool fresh/reused and matcher totals — deterministic counters
  /// only, keyed "match_allocs_*" / "matcher_*".
  void FillFinalStats(engine::FinalStatsEvent* stats) const override;

  /// Workload drift (paper Sec. 6): decays the existing trie supports to
  /// `decay` of their mass and mixes in `workload` (normalised) with weight
  /// 1-decay. Motif status, the admission mask and allocation supports all
  /// shift accordingly; matches already in flight are unaffected. Call
  /// between Ingest()s at any time.
  void UpdateWorkload(const query::Workload& workload, double decay = 0.5);
  const partition::Partitioning& partitioning() const override {
    return partitioning_;
  }
  std::string name() const override { return "loom"; }

  /// Full pipeline snapshot (options fingerprint, stats, partition table,
  /// window, matchList, seen-graph) via the shared Loom codec; restore +
  /// tail is bit-identical to the uninterrupted run.
  bool SaveState(io::CheckpointWriter* w, std::string* error) const override;
  bool RestoreState(io::CheckpointReader* r, std::string* error) override;

  const tpstry::Tpstry& trie() const { return *trie_; }
  const LoomStats& stats() const { return stats_; }
  const motif::MatcherStats& matcher_stats() const { return matcher_->stats(); }

  /// Pool behind the matchList, for allocation-reuse stats in reports.
  const motif::MatchPool& match_pool() const { return match_list_.pool(); }

  /// Live slot span of the sliding window's ring buffer (for stats).
  size_t WindowSlots() const { return window_.NumSlots(); }

  /// Live window occupancy (the Ptemp size), for tests/monitoring.
  size_t WindowSize() const { return window_.size(); }

 private:
  /// Shared Ingest body with the admission test hoisted out (the batch path
  /// precomputes it).
  void IngestWithAdmission(const stream::StreamEdge& e, bool admitted);

  /// Open-alphabet support: grows the label-value table (chunked, values of
  /// existing labels untouched) and re-fits the admission memo + motif-label
  /// mask when the stream reveals a label beyond the current space. Must run
  /// before any admission probe of the offending edge.
  void EnsureLabelSpace(graph::LabelId max_label);

  /// True if v's placement is being withheld pending a motif cluster:
  /// unassigned and motif-labelled, or in live matches.
  bool IsDeferred(graph::VertexId v, graph::LabelId label);

  /// Assigns v to p.
  void AssignVertex(graph::VertexId v, graph::PartitionId p);

  /// Immediate LDG assignment for edges outside the motif machinery.
  void AssignImmediately(const stream::StreamEdge& e);

  /// Evicts the oldest window edge, allocating its match cluster.
  void EvictOldest();

  LoomOptions options_;
  size_t ctor_num_labels_;  // label space at construction (checkpoint id)
  partition::Partitioning partitioning_;
  graph::DynamicGraph seen_;  // streamed-so-far adjacency (for LDG scoring)
  partition::HubTallyCache hub_;  // derived from seen_; rebuilt on restore

  std::unique_ptr<signature::LabelValues> label_values_;
  std::unique_ptr<signature::SignatureCalculator> calc_;
  std::unique_ptr<tpstry::Tpstry> trie_;
  std::unique_ptr<motif::MotifMatcher> matcher_;
  std::unique_ptr<EqualOpportunism> allocator_;

  stream::SlidingWindow window_;
  motif::MatchList match_list_;
  std::vector<uint8_t> motif_label_;  // labels that occur in some motif (byte,
                                      // not vector<bool>: probed per edge)
  LoomStats stats_;
  uint64_t edges_since_compact_ = 0;

  // Eviction-path scratch, reused so allocation stays off the hot path.
  std::vector<motif::MatchHandle> me_scratch_;
  std::vector<graph::EdgeId> assign_scratch_;
  std::vector<uint8_t> admit_scratch_;  // per-batch admission bits
};

}  // namespace core
}  // namespace loom

#endif  // LOOM_CORE_LOOM_PARTITIONER_H_
