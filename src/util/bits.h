// Small bit-twiddling helpers shared by the flat containers and ring
// buffers (one definition, so overflow guards / hash tweaks can't drift
// between copies).

#ifndef LOOM_UTIL_BITS_H_
#define LOOM_UTIL_BITS_H_

#include <cstddef>
#include <cstdint>

namespace loom {
namespace util {

/// Smallest power of two >= n (n = 0 or 1 gives 1).
inline size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// SplitMix64 finaliser: cheap, well-distributed 64-bit mix.
inline uint64_t Mix64(uint64_t key) {
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
  return key ^ (key >> 31);
}

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_BITS_H_
