// Ablation (ours, motivated by Sec. 2's motif threshold T): sweep the motif
// support threshold. Low T admits every sub-graph as a motif (bigger
// clusters, more matching work); high T disables the machinery entirely
// (Loom degrades to delayed LDG). The paper fixes T = 40%.

#include <iostream>

#include "bench_common.h"
#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "util/table_writer.h"

int main() {
  using namespace loom;
  bench::Banner("Ablation — motif support threshold T", "Sec. 2 (T = 40%)");

  const std::vector<double> thresholds = {0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9};

  for (auto id : {datasets::DatasetId::kProvGen, datasets::DatasetId::kDblp}) {
    datasets::Dataset ds = datasets::MakeDataset(id, bench::BenchScale());
    const stream::EdgeStream es =
        stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

    eval::ExperimentConfig base;
    base.window_size = bench::BenchWindow();
    eval::SystemResult fennel =
        eval::RunSystem(eval::System::kFennel, ds, es, base);

    util::TableWriter t({"T", "loom ipt", "vs fennel", "partition ms/10k"});
    for (double threshold : thresholds) {
      eval::ExperimentConfig cfg = base;
      cfg.support_threshold = threshold;
      eval::SystemResult r = eval::RunSystem(eval::System::kLoom, ds, es, cfg);
      t.AddRow({util::TableWriter::Pct(threshold, 0),
                util::TableWriter::Fmt(r.weighted_ipt, 0),
                util::TableWriter::Pct(r.weighted_ipt / fennel.weighted_ipt),
                util::TableWriter::Fmt(r.ms_per_10k_edges, 1)});
    }
    std::cout << "--- " << ds.meta.name
              << " (fennel ipt = " << util::TableWriter::Fmt(fennel.weighted_ipt, 0)
              << ") ---\n";
    t.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape: a sweet spot around the paper's T = 40%; very "
               "high T loses the motif\nsignal (ipt rises toward LDG "
               "levels), very low T admits rare patterns whose\nco-location "
               "crowds out the frequent ones.\n";
  return 0;
}
