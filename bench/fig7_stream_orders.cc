// Fig. 7: ipt %, vs. Hash, when executing Q over 8-way partitionings of
// graph streams in multiple orders (random / breadth-first / depth-first),
// for the four queryable datasets and the four systems.
//
// Also prints the §5.2 imbalance prose numbers (LDG 1-3%, Fennel/Loom up to
// ~10%) for the breadth-first runs.

#include <iostream>

#include "bench_common.h"
#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "eval/report.h"

int main() {
  using namespace loom;
  bench::Banner("Fig. 7 — ipt vs Hash across stream orders (k = 8)",
                "Fig. 7(a-c) + Sec. 5.2 imbalance");

  std::vector<eval::ComparisonResult> bfs_results;
  for (auto order :
       {stream::StreamOrder::kRandom, stream::StreamOrder::kBreadthFirst,
        stream::StreamOrder::kDepthFirst}) {
    std::cout << "--- stream order: " << stream::ToString(order) << " ---\n";
    std::vector<eval::ComparisonResult> results;
    for (auto id : datasets::QueryableDatasets()) {
      datasets::Dataset ds = datasets::MakeDataset(id, bench::BenchScale());
      eval::ExperimentConfig cfg;
      cfg.order = order;
      cfg.k = 8;
      cfg.window_size = bench::BenchWindow();
      results.push_back(eval::RunComparison(ds, cfg));
    }
    eval::PrintRelativeIptTable(results, std::cout);
    std::cout << "\n";
    if (order == stream::StreamOrder::kBreadthFirst) bfs_results = results;
  }

  std::cout << "Partition imbalance (Sec. 5.2 prose; breadth-first runs):\n";
  eval::PrintImbalanceTable(bfs_results, std::cout);

  std::cout
      << "\nExpected shape (paper): Hash worst (100%); LDG ~45-60%; Fennel "
         "better than LDG;\nLoom best with 15-40% fewer ipt than Fennel, "
         "largest on the most heterogeneous\ndatasets and smallest under "
         "random order. LDG imbalance 1-3%; Fennel/Loom ~7-10%.\n";
  return 0;
}
