// Fig. 9: absolute ipt when executing Q over Loom partitionings with
// multiple window sizes t (the x axis sweeps 100 .. ~20k), per dataset, on
// randomly-ordered streams (where window sensitivity is most pronounced,
// Sec. 5.3).

#include <iostream>

#include "bench_common.h"
#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "util/table_writer.h"

int main() {
  using namespace loom;
  bench::Banner("Fig. 9 — ipt vs Loom window size t", "Fig. 9, Sec. 5.3");

  const std::vector<size_t> windows = {100, 500, 1000, 2500, 5000, 10000, 20000};

  std::vector<std::string> header = {"dataset"};
  for (size_t w : windows) header.push_back("t=" + std::to_string(w));
  util::TableWriter t(header);

  for (auto id : datasets::QueryableDatasets()) {
    datasets::Dataset ds = datasets::MakeDataset(id, bench::BenchScale());
    const stream::EdgeStream es = stream::MakeStream(
        ds.graph, stream::StreamOrder::kRandom, /*seed=*/0x10c5);
    std::vector<std::string> row = {ds.meta.name};
    for (size_t w : windows) {
      eval::ExperimentConfig cfg;
      cfg.order = stream::StreamOrder::kRandom;
      cfg.window_size = w;
      eval::SystemResult r = eval::RunSystem(eval::System::kLoom, ds, es, cfg);
      row.push_back(util::TableWriter::Fmt(r.weighted_ipt, 0));
    }
    t.AddRow(std::move(row));
  }
  t.Print(std::cout);

  std::cout << "\nExpected shape (paper): ipt falls steeply as t grows from "
               "100 toward ~10k (by as much as 47%),\nthen flattens — larger "
               "windows buy little once clusters of motif matches fit.\n";
  return 0;
}
