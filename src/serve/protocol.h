// loom_serve wire protocol: newline-delimited text, one command per line,
// exactly one reply line per command.
//
//   INGEST <u> <v> <label_u> <label_v> [<seq>]
//                                        -> OK queued | OK dup ... | ERR ...
//   GET <v>                              -> OK <v> <partition|->
//   STATS                                -> OK edges=... assigned=... ...
//   CHECKPOINT                           -> OK checkpoint <path> edges=<n>
//   FINALIZE                             -> OK finalized edges=<n>
//   SNAPSHOT-QUALITY                     -> OK hash=<hex> cut=<n> imbalance=<f>
//   SHUTDOWN                             -> OK shutting down
//
// The optional INGEST <seq> makes re-sends idempotent: it names the edge's
// 0-based position in the server's accept order. A client that times out
// waiting for a reply can re-send the same line — if the server already
// accepted that position ("OK dup seq=<s> cursor=<c>") the duplicate is
// DROPPED rather than ingested twice, so the served partitioning stays
// bit-identical to an offline replay of the deduplicated sequence. A seq
// ahead of the cursor is a gap (edges would be applied out of order) and
// is rejected with the expected value. Seq-less INGEST keeps the old
// at-least-once behaviour.
//
// Everything in this header is PURE — parsing, formatting and line framing
// over in-memory bytes, no sockets — so the whole protocol is unit-testable
// without a server. Labels travel as numeric LabelIds in the server's label
// table (loom_serve --like S.les interns a stream file's table at startup);
// sending names would force an interning lock into the hot path.
//
// A malformed line is a protocol-level error: it produces an "ERR ..."
// reply and the connection keeps going. Only transport failures end a
// connection.

#ifndef LOOM_SERVE_PROTOCOL_H_
#define LOOM_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "graph/types.h"
#include "stream/stream_edge.h"

namespace loom {
namespace serve {

/// Longest accepted command line (bytes, excluding the newline). The widest
/// legal command is far shorter; the cap exists so a garbage client cannot
/// grow a server-side buffer without bound.
inline constexpr size_t kMaxLineBytes = 4096;

enum class CommandType : uint8_t {
  kIngest,
  kGet,
  kStats,
  kCheckpoint,
  kFinalize,
  kSnapshotQuality,
  kShutdown,
};

struct Command {
  CommandType type = CommandType::kStats;
  /// kIngest payload. `id` is NOT part of the wire format — stream ids are
  /// positions, stamped by the server in queue-accept order.
  stream::StreamEdge edge{};
  /// kGet payload.
  graph::VertexId vertex = 0;
  /// kIngest: client-declared accept-order position (only meaningful when
  /// `has_seq`); the duplicate/gap decision is the server's.
  uint64_t seq = 0;
  bool has_seq = false;
};

/// Parses one complete line (no trailing newline). Returns false with a
/// human-readable `*error` (suitable for ErrReply) on anything malformed:
/// unknown verbs, wrong arity, non-numeric or out-of-range ids (vertex ids
/// must be < kInvalidVertex, label ids < kInvalidLabel), self-loops.
bool ParseCommand(std::string_view line, Command* out, std::string* error);

/// The canonical wire line for `c` (no trailing newline).
/// ParseCommand(FormatCommand(c)) reproduces `c` exactly.
std::string FormatCommand(const Command& c);

/// "ERR <detail>".
std::string ErrReply(std::string_view detail);

/// True when `reply` is an OK line.
bool IsOk(std::string_view reply);

/// Reassembles complete lines out of arbitrary read() chunks — clients
/// interleave partial writes, and TCP-style streams fragment however they
/// like. Lines longer than `max_line_bytes` are discarded through their
/// newline and surfaced as kOversize (one per oversize line), so a garbage
/// flood costs bounded memory and each victim line still gets its ERR reply.
class LineFramer {
 public:
  enum class Result {
    kLine,      // *line holds a complete line (newline stripped)
    kOversize,  // a too-long line was discarded; reply ERR and carry on
    kNeedMore,  // no complete line buffered; Feed more bytes
  };

  explicit LineFramer(size_t max_line_bytes = kMaxLineBytes)
      : max_(max_line_bytes) {}

  void Feed(std::string_view bytes);

  /// Extracts the next complete line. Call until kNeedMore after each Feed.
  /// A trailing '\r' (telnet-style CRLF) is stripped.
  Result Next(std::string* line);

 private:
  std::string buf_;
  size_t max_;
  bool discarding_ = false;
};

}  // namespace serve
}  // namespace loom

#endif  // LOOM_SERVE_PROTOCOL_H_
