#include "stream/edge_stream.h"

#include <cassert>

namespace loom {
namespace stream {

EdgeStream::EdgeStream(const graph::LabeledGraph& g,
                       const std::vector<graph::EdgeId>& edge_order) {
  assert(edge_order.size() == g.NumEdges());
  edges_.reserve(edge_order.size());
  for (size_t pos = 0; pos < edge_order.size(); ++pos) {
    const graph::Edge& e = g.edge(edge_order[pos]);
    StreamEdge se;
    se.id = static_cast<graph::EdgeId>(pos);
    se.u = e.u;
    se.v = e.v;
    se.label_u = g.label(e.u);
    se.label_v = g.label(e.v);
    edges_.push_back(se);
  }
}

}  // namespace stream
}  // namespace loom
