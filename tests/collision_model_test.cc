#include "signature/collision_model.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace loom {
namespace signature {
namespace {

TEST(CollisionModelTest, PrimesUpToKnownList) {
  EXPECT_EQ(PrimesUpTo(1).size(), 0u);
  EXPECT_EQ(PrimesUpTo(2), (std::vector<uint32_t>{2}));
  EXPECT_EQ(PrimesUpTo(20),
            (std::vector<uint32_t>{2, 3, 5, 7, 11, 13, 17, 19}));
  // Fig. 4 sweeps p up to 317; 251 (the paper's choice) must be prime.
  auto primes = PrimesUpTo(317);
  EXPECT_NE(std::find(primes.begin(), primes.end(), 251u), primes.end());
  EXPECT_EQ(primes.back(), 317u);
}

TEST(CollisionModelTest, ProbabilityIncreasesWithP) {
  // Bigger field -> fewer collisions -> higher acceptance probability.
  double prev = 0.0;
  for (uint32_t p : {5u, 11u, 51u, 101u, 251u}) {
    double prob = ProbAcceptableCollisions(48, 0.05, p);
    EXPECT_GE(prob, prev);
    prev = prob;
  }
  EXPECT_GT(prev, 0.9);  // p=251, 48 factors, 5% tolerance: near certainty
}

TEST(CollisionModelTest, ProbabilityDecreasesWithFactorCount) {
  // More factors at fixed tolerance fraction -> roughly comparable, but at a
  // fixed small p more factors means more chances to exceed the budget.
  double p24 = ProbAcceptableCollisions(24, 0.05, 31);
  double p48 = ProbAcceptableCollisions(48, 0.05, 31);
  EXPECT_GE(p24, p48 - 0.15);  // same shape as Fig. 4's curve ordering
}

TEST(CollisionModelTest, ToleranceMonotone) {
  for (uint32_t p : {11u, 31u, 101u}) {
    double t5 = ProbAcceptableCollisions(36, 0.05, p);
    double t10 = ProbAcceptableCollisions(36, 0.10, p);
    double t20 = ProbAcceptableCollisions(36, 0.20, p);
    EXPECT_LE(t5, t10);
    EXPECT_LE(t10, t20);
  }
}

TEST(CollisionModelTest, DegenerateField) {
  // p = 2 makes every factor collide (q = 1): acceptance only if tolerance
  // covers everything.
  EXPECT_NEAR(ProbAcceptableCollisions(24, 1.0, 2), 1.0, 1e-9);
  EXPECT_LT(ProbAcceptableCollisions(24, 0.05, 2), 1e-6);
}

TEST(CollisionModelTest, CurveMatchesPointwise) {
  std::vector<uint32_t> primes = {11, 101, 251};
  auto curve = CollisionCurve(36, 0.10, primes);
  ASSERT_EQ(curve.size(), 3u);
  for (size_t i = 0; i < primes.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve[i],
                     ProbAcceptableCollisions(36, 0.10, primes[i]));
  }
}

TEST(CollisionModelTest, EmpiricalRateNear2OverP) {
  for (uint32_t p : {11u, 101u, 251u}) {
    double rate = EmpiricalFactorCollisionRate(p, 200000, 7);
    EXPECT_NEAR(rate, 2.0 / (p - 1), 2.0 / (p - 1) * 0.2 + 1e-3);
  }
}

TEST(CollisionModelTest, EmpiricalRateDeterministic) {
  EXPECT_DOUBLE_EQ(EmpiricalFactorCollisionRate(251, 10000, 3),
                   EmpiricalFactorCollisionRate(251, 10000, 3));
}

}  // namespace
}  // namespace signature
}  // namespace loom
