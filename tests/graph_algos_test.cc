#include "graph/graph_algos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <set>

#include "datasets/dataset_registry.h"

namespace loom {
namespace graph {
namespace {

LabeledGraph Path(size_t n) {
  LabeledGraph::Builder b;
  for (size_t i = 0; i < n; ++i) b.AddVertex(0);
  for (size_t i = 0; i + 1 < n; ++i) {
    b.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return b.Build();
}

LabeledGraph TwoComponents() {
  LabeledGraph::Builder b;
  for (int i = 0; i < 6; ++i) b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  return b.Build();
}

bool IsPermutationOfAllEdges(const LabeledGraph& g,
                             const std::vector<EdgeId>& order) {
  if (order.size() != g.NumEdges()) return false;
  std::set<EdgeId> seen(order.begin(), order.end());
  return seen.size() == g.NumEdges() && *seen.rbegin() == g.NumEdges() - 1;
}

TEST(GraphAlgosTest, BfsOrderIsEdgePermutation) {
  LabeledGraph g = TwoComponents();
  EXPECT_TRUE(IsPermutationOfAllEdges(g, BfsEdgeOrder(g)));
}

TEST(GraphAlgosTest, DfsOrderIsEdgePermutation) {
  LabeledGraph g = TwoComponents();
  EXPECT_TRUE(IsPermutationOfAllEdges(g, DfsEdgeOrder(g)));
}

TEST(GraphAlgosTest, RandomOrderIsEdgePermutation) {
  LabeledGraph g = TwoComponents();
  util::Rng rng(1);
  EXPECT_TRUE(IsPermutationOfAllEdges(g, RandomEdgeOrder(g, &rng)));
}

TEST(GraphAlgosTest, BfsOnPathIsSequential) {
  LabeledGraph g = Path(10);
  auto order = BfsEdgeOrder(g);
  // On a path rooted at vertex 0, BFS discovers edges in chain order.
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LT(order[i], order[i + 1]);
  }
}

TEST(GraphAlgosTest, BfsPrefixIsConnectedSubgraph) {
  // Streaming property the evaluation relies on: every prefix of a BFS edge
  // order within one component forms a connected sub-graph.
  datasets::Dataset ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  const LabeledGraph& g = ds.graph;
  auto order = BfsEdgeOrder(g);
  // Union-find over prefix; count components among touched vertices.
  std::vector<VertexId> parent(g.NumVertices());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<VertexId(VertexId)> find = [&](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  // Components can only merge or be *rooted* fresh (new BFS root), never
  // split. Track that each new edge touches at least one previously-seen
  // vertex unless it starts a new component root.
  std::vector<bool> seen(g.NumVertices(), false);
  size_t fresh_roots = 0;
  for (EdgeId eid : order) {
    const Edge& e = g.edge(eid);
    if (!seen[e.u] && !seen[e.v]) ++fresh_roots;
    seen[e.u] = seen[e.v] = true;
    parent[find(e.u)] = find(e.v);
  }
  size_t num_components;
  ConnectedComponents(g, &num_components);
  EXPECT_LE(fresh_roots, num_components);
}

TEST(GraphAlgosTest, DeterministicOrders) {
  LabeledGraph g = TwoComponents();
  EXPECT_EQ(BfsEdgeOrder(g), BfsEdgeOrder(g));
  EXPECT_EQ(DfsEdgeOrder(g), DfsEdgeOrder(g));
  util::Rng r1(7), r2(7);
  EXPECT_EQ(RandomEdgeOrder(g, &r1), RandomEdgeOrder(g, &r2));
}

TEST(GraphAlgosTest, ConnectedComponentsCounts) {
  LabeledGraph g = TwoComponents();
  size_t n = 0;
  auto comp = ConnectedComponents(g, &n);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[5]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(GraphAlgosTest, SingletonVerticesAreComponents) {
  LabeledGraph::Builder b;
  b.AddVertex(0);
  b.AddVertex(0);
  LabeledGraph g = b.Build();
  size_t n = 0;
  ConnectedComponents(g, &n);
  EXPECT_EQ(n, 2u);
}

TEST(GraphAlgosTest, DegreeStats) {
  LabeledGraph g = Path(5);
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 2u);
  EXPECT_NEAR(s.mean, 2.0 * 4 / 5, 1e-12);
}

TEST(GraphAlgosTest, DegreeStatsEmptyGraph) {
  LabeledGraph g;
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace graph
}  // namespace loom
