// Offline split-merge rebalancing (the FSM idea from the
// split-merge-partitioner line of work, SNIPPETS.md Snippet 1 family):
// take a RECORDED edge assignment produced at some k' ("split" — in FSM
// the split phase over-partitions on purpose; here any `--edge-out` run
// works), treat each of the k' input parts as an indivisible ATOM, and
// greedily MERGE atoms down to a target k, picking at every step the
// feasible pair with the largest vertex-set overlap — merging parts that
// already share vertices is exactly what removes replicas — subject to a
// hard edge-balance cap (a merge may never push a part past
// balance_cap x m / target_k edges).
//
// This is a pure offline pass over the "<u>\t<v>\t<partition>" TSV that
// io::FileEdgeAssignmentSink writes: no partitioner instance, no stream —
// just atoms, loads, util::DenseBitset vertex sets, and a deterministic
// greedy (ties: smaller combined load, then lower atom ids). The quality
// triple of the merged assignment is recomputed from scratch in file
// order, so the numbers are directly comparable with the live backends'.
// NaiveModuloMerge (atom i -> i mod k) is the strawman baseline the tests
// and `loom_partition --rebalance-to` report against.

#ifndef LOOM_PARTITION_EDGE_SPLIT_MERGE_H_
#define LOOM_PARTITION_EDGE_SPLIT_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace loom {
namespace partition {
namespace edge {

/// One line of a recorded edge assignment ("<u>\t<v>\t<partition>").
struct EdgeAssignmentRecord {
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  graph::PartitionId partition = 0;
};

/// The standard edge-partitioning quality triple, recomputed offline.
struct EdgeQuality {
  double replication_factor = 0.0;   // Σ_v |R(v)| / |{v seen}|
  double edge_balance = 0.0;         // max_p load(p) · k / m
  uint64_t edge_assignment_hash = 0; // FNV-1a over placements in file order
};

struct SplitMergeOptions {
  uint32_t target_k = 0;     // required: final part count, 0 < target_k <= k'
  double balance_cap = 1.1;  // no part may exceed cap x m / target_k edges
};

struct SplitMergeResult {
  uint32_t input_parts = 0;                     // k' observed in the file
  std::vector<graph::PartitionId> atom_to_part; // size k': final part per atom
  EdgeQuality input_quality;                    // triple of the file as-is
  EdgeQuality quality;                          // triple after the merge
};

/// Parses a recorded edge assignment TSV (the `--edge-out` format). Returns
/// false with an actionable, line-numbered `*error` on malformed input.
bool LoadEdgeAssignments(const std::string& path,
                         std::vector<EdgeAssignmentRecord>* records,
                         std::string* error);

/// Greedily merges the k' input parts down to options.target_k. Returns
/// false with `*error` when the target is invalid for the input or no
/// feasible merge exists under the balance cap (the message says to raise
/// it). Deterministic: same records + options -> same mapping.
bool SplitMerge(const std::vector<EdgeAssignmentRecord>& records,
                const SplitMergeOptions& options, SplitMergeResult* result,
                std::string* error);

/// The strawman: atom i -> i mod target_k. What you'd get from hashing
/// parts together with no regard for vertex overlap or balance.
std::vector<graph::PartitionId> NaiveModuloMerge(uint32_t input_parts,
                                                 uint32_t target_k);

/// Recomputes the quality triple of `records` remapped through
/// `atom_to_part` (identity mapping -> the input's own triple). Records
/// whose partition has no mapping entry are a caller bug; the function
/// asserts in debug and clamps in release.
EdgeQuality EvaluateMerged(const std::vector<EdgeAssignmentRecord>& records,
                           const std::vector<graph::PartitionId>& atom_to_part,
                           uint32_t k_out);

}  // namespace edge
}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_EDGE_SPLIT_MERGE_H_
