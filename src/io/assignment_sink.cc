#include "io/assignment_sink.h"

#include <stdexcept>

namespace loom {
namespace io {

FileAssignmentSink::FileAssignmentSink(const std::string& path)
    : path_(path), out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("assignment sink: cannot write '" + path_ + "'");
  }
}

void FileAssignmentSink::Append(graph::VertexId vertex,
                                graph::PartitionId partition) {
  out_ << vertex << '\t' << partition << '\n';
  ++written_;
}

void FileAssignmentSink::Flush() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error("assignment sink: write failed on '" + path_ +
                             "'");
  }
}

FileEdgeAssignmentSink::FileEdgeAssignmentSink(const std::string& path)
    : path_(path), out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("edge assignment sink: cannot write '" + path_ +
                             "'");
  }
}

void FileEdgeAssignmentSink::Append(graph::EdgeId /*edge*/, graph::VertexId u,
                                    graph::VertexId v,
                                    graph::PartitionId partition) {
  out_ << u << '\t' << v << '\t' << partition << '\n';
  ++written_;
}

void FileEdgeAssignmentSink::Flush() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error("edge assignment sink: write failed on '" +
                             path_ + "'");
  }
}

}  // namespace io
}  // namespace loom
