// Quickstart: the paper's Fig. 1 example, end to end, on the engine facade.
//
// Builds the 8-vertex graph G with labels a/b/c/d, declares the workload
// Q = {q1: a-b square 30%, q2: a-b-c path 60%, q3: a-b-c-d path 10%},
// constructs Loom through engine::PartitionerRegistry (string-addressable
// options, the same path every tool and bench uses), inspects the TPSTry++
// and its motifs, streams G through a pull-based EdgeSource, and compares
// workload ipt against the Hash/LDG/Fennel baselines.
//
// Run:  ./example_quickstart

#include <iostream>

#include "core/loom_partitioner.h"
#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "query/workload_runner.h"

int main() {
  using namespace loom;

  // 1. The Fig. 1 graph and workload.
  datasets::Dataset ds = datasets::MakeFigure1Dataset();
  std::cout << "Graph G: " << ds.NumVertices() << " vertices, "
            << ds.NumEdges() << " edges, labels {a, b, c, d}\n";
  std::cout << "Workload Q:\n";
  for (const auto& q : ds.workload.queries()) {
    std::cout << "  " << q.name << " " << q.pattern.ToString(ds.registry)
              << " @ " << q.frequency * 100 << "%\n";
  }

  // 2. Build Loom through the engine facade. Options are typed fields that
  //    are also addressable as key=value strings — the same overrides a CLI
  //    or bench config would pass.
  engine::EngineOptions options;
  options.expected_vertices = ds.NumVertices();
  options.expected_edges = ds.NumEdges();
  std::string error;
  if (!options.ApplyOverrides({"k=2", "window_size=6"}, &error)) {
    std::cerr << "options: " << error << "\n";
    return 1;
  }
  engine::BuildContext context{&ds.workload, ds.registry.size()};
  auto partitioner = engine::PartitionerRegistry::Global().Create(
      "loom", options, context, &error);
  if (partitioner == nullptr) {
    std::cerr << "engine: " << error << "\n";
    return 1;
  }

  // Inspect the trie Loom derived from Q (Sec. 2) via the concrete type.
  auto* loom_p = dynamic_cast<core::LoomPartitioner*>(partitioner.get());
  std::cout << "\nTPSTry++ built from Q (T = 40%):\n"
            << loom_p->trie().Dump(ds.registry);

  // 3. Stream G breadth-first through the engine (Sec. 3-4): batches are
  //    pulled from an EdgeSource; an observer watches the decisions.
  engine::StatsObserver stats;
  auto source = engine::MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
  engine::Drive(partitioner.get(), source.get(), &stats);

  std::cout << "\nLoom's 2-way partitioning of G ("
            << stats.totals().vertices_assigned << " vertices assigned, "
            << stats.totals().cluster_decisions << " match clusters):\n";
  for (graph::VertexId v = 0; v < ds.NumVertices(); ++v) {
    std::cout << "  vertex " << v + 1 << " (" /* 1-based like the paper */
              << ds.registry.Name(ds.graph.label(v)) << ") -> partition "
              << partitioner->partitioning().PartitionOf(v) << "\n";
  }

  // 4. Execute the workload and count inter-partition traversals.
  query::WorkloadResult loom_result =
      query::RunWorkload(ds.graph, partitioner->partitioning(), ds.workload);
  std::cout << "\nLoom: weighted ipt = " << loom_result.weighted_ipt
            << " over " << loom_result.weighted_traversals
            << " weighted traversals\n";

  // 5. Compare against Hash / LDG / Fennel on the same stream (the eval
  //    harness drives every backend through the same registry).
  eval::ExperimentConfig cfg;
  cfg.k = 2;
  cfg.window_size = 6;
  eval::ComparisonResult cmp = eval::RunComparison(ds, cfg);
  std::cout << "\nAll systems (ipt as % of Hash):\n";
  eval::PrintRelativeIptTable({cmp}, std::cout);
  return 0;
}
