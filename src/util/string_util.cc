#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace loom {
namespace util {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanCount(uint64_t n) {
  char buf[32];
  if (n >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fB", static_cast<double>(n) / 1e9);
  } else if (n >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

}  // namespace util
}  // namespace loom
