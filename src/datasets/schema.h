// Dataset bundle: a labelled graph, its label registry, its canonical query
// workload, and descriptive metadata.
//
// The paper evaluates on DBLP, ProvGen, MusicBrainz and LUBM-100/4000
// (Table 1). The raw datasets are not redistributable (and at 31M-131M
// vertices far exceed a laptop-scale reproduction), so each is emulated by a
// deterministic synthetic generator that preserves what Loom's behaviour
// depends on: the label alphabet (|LV| = 8/3/12/15), the schema's edge types
// (so the workload queries actually match), heavy-tailed degree, and the
// relative dataset ordering by size. DESIGN.md documents this substitution.

#ifndef LOOM_DATASETS_SCHEMA_H_
#define LOOM_DATASETS_SCHEMA_H_

#include <string>

#include "graph/label_registry.h"
#include "graph/labeled_graph.h"
#include "query/query.h"

namespace loom {
namespace datasets {

struct DatasetMetadata {
  std::string name;
  bool real_world_analog = false;  // Table 1's "Real" column
  std::string description;
};

struct Dataset {
  DatasetMetadata meta;
  graph::LabelRegistry registry;
  graph::LabeledGraph graph;
  query::Workload workload;

  size_t NumVertices() const { return graph.NumVertices(); }
  size_t NumEdges() const { return graph.NumEdges(); }
  size_t NumLabels() const { return registry.size(); }
};

}  // namespace datasets
}  // namespace loom

#endif  // LOOM_DATASETS_SCHEMA_H_
