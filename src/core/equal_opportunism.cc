#include "core/equal_opportunism.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "util/simd.h"

namespace loom {
namespace core {

EqualOpportunism::EqualOpportunism(const tpstry::Tpstry* trie,
                                   const graph::NeighborView* neighborhood,
                                   EqualOpportunismConfig config)
    : trie_(trie), neighborhood_(neighborhood), config_(config) {}

double EqualOpportunism::RationWith(double size, double smin,
                                    double avg) const {
  if (config_.disable_rationing) return 1.0;
  if (size > config_.balance_b * avg) return 0.0;  // α_eff = 0
  if (size <= smin) return 1.0;                    // α_eff = 1, ratio >= 1
  return (smin / size) * config_.alpha;            // α_eff = α
}

double EqualOpportunism::Ration(graph::PartitionId si,
                                const partition::Partitioning& p) const {
  const double size = static_cast<double>(p.Size(si));
  // Smin = 0 while partitions are still empty; clamp to 1 so the ratio stays
  // meaningful during cold start.
  const double smin = static_cast<double>(std::max<size_t>(p.MinSize(), 1));
  // The b cutoff "emulates Fennel" (Sec. 4), whose ν bound is relative to
  // the *average* partition size — a Smin-relative bound would mute almost
  // every partition whenever one partition briefly lags. (The paper's own
  // worked example exceeds b·Smin yet still bids, so the strict reading of
  // Eq. 2's piecewise α is inconsistent with its use; see DESIGN.md.)
  const double avg = std::max(
      static_cast<double>(p.NumAssigned()) / static_cast<double>(p.k()), 1.0);
  return RationWith(size, smin, avg);
}

double EqualOpportunism::Bid(graph::PartitionId si, const motif::Match& match,
                             const partition::Partitioning& p) const {
  // N(Si, Ek): match vertices already resident in Si...
  double overlap = 0.0;
  for (graph::VertexId v : match.vertices) {
    if (p.PartitionOf(v) == si) overlap += 1.0;
  }
  // ...generalised (as the paper notes of LDG's N) with a discounted count
  // of the match vertices' already-assigned neighbours in Si, so a cluster
  // is also drawn toward its satellite structure (recordings, venues, ...).
  if (neighborhood_ != nullptr && config_.neighbor_bid_weight > 0.0) {
    uint32_t nbrs = 0;
    for (graph::VertexId v : match.vertices) {
      for (graph::VertexId w : neighborhood_->Neighbors(v)) {
        if (p.PartitionOf(w) == si) ++nbrs;
      }
    }
    overlap += config_.neighbor_bid_weight * static_cast<double>(nbrs);
  }
  if (overlap <= 0.0) return 0.0;
  const double residual =
      1.0 - static_cast<double>(p.Size(si)) / static_cast<double>(p.Capacity());
  const double support = trie_->NormalizedSupport(match.node_id);
  return overlap * residual * support;
}

AllocationDecision EqualOpportunism::Decide(const motif::MatchList& ml,
                                            std::vector<motif::MatchHandle>& me,
                                            const partition::Partitioning& p,
                                            graph::PartitionId fallback) const {
  AllocationDecision decision = DecideBids(ml, me, p);
  if (decision.partition == graph::kNoPartition) {
    // Cold start / no overlap anywhere: seed the cluster where the caller's
    // neighbourhood heuristic points (falling back to least-loaded if that
    // partition is full). The whole cluster is seeded together — rationing
    // exists to stop *bid-winning* partitions hoarding matches, not to break
    // up a cluster that nobody bid on (doing so would orphan the evictee's
    // match partners and void their co-location).
    decision.partition =
        p.AtCapacity(fallback) ? p.LeastLoaded() : fallback;
    decision.take = me.size();
  }
  return decision;
}

AllocationDecision EqualOpportunism::DecideBids(
    const motif::MatchList& ml, std::vector<motif::MatchHandle>& me,
    const partition::Partitioning& p) const {
  AllocationDecision decision;
  if (me.empty()) return decision;

  // Support-descending order; smaller matches first on ties (the paper
  // prioritises "smaller, higher support" matches), then content key so the
  // order is fully deterministic. Keys are precomputed once per match — the
  // comparator would otherwise recompute supports/content hashes O(n log n)
  // times on the eviction hot path.
  sort_scratch_.clear();
  for (motif::MatchHandle h : me) {
    const motif::Match& m = ml.match(h);
    sort_scratch_.push_back(
        {trie_->NormalizedSupport(m.node_id), m.edges.size(), m.Key(), h});
  }
  std::sort(sort_scratch_.begin(), sort_scratch_.end(),
            [](const SortKey& a, const SortKey& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.num_edges != b.num_edges) return a.num_edges < b.num_edges;
              return a.key < b.key;
            });
  for (size_t i = 0; i < me.size(); ++i) me[i] = sort_scratch_[i].handle;

  // Eq. 1's N(Si, Ek) for every (match, partition) pair in a single
  // adjacency pass per match: tally resident match vertices and (discounted)
  // their assigned neighbours into a me.size() x k table. Bit-identical to
  // calling Bid() per pair, k times cheaper.
  const uint32_t k = p.k();
  const std::span<const graph::PartitionId> table = p.assignments();
  overlap_scratch_.assign(me.size() * k, 0.0);
  const bool use_nbrs =
      neighborhood_ != nullptr && config_.neighbor_bid_weight > 0.0;
  if (use_nbrs) {
    // The cluster's matches share (hub) vertices; scan each distinct
    // vertex's adjacency once per eviction, not once per containing match.
    nbr_cached_vertices_.clear();
    for (motif::MatchHandle h : me) {
      const motif::Match& m = ml.match(h);
      nbr_cached_vertices_.insert(nbr_cached_vertices_.end(),
                                  m.vertices.begin(), m.vertices.end());
    }
    std::sort(nbr_cached_vertices_.begin(), nbr_cached_vertices_.end());
    nbr_cached_vertices_.erase(
        std::unique(nbr_cached_vertices_.begin(), nbr_cached_vertices_.end()),
        nbr_cached_vertices_.end());
    nbr_rows_.assign(nbr_cached_vertices_.size() * k, 0);
    for (size_t ci = 0; ci < nbr_cached_vertices_.size(); ++ci) {
      uint32_t* row = &nbr_rows_[ci * k];
      // Tally page by page; the kernel accumulates, so the sums don't see
      // the arena's chunk boundaries.
      neighborhood_->Neighbors(nbr_cached_vertices_[ci])
          .ForEachChunk([&](const graph::VertexId* ids, size_t n) {
            util::simd::TallyGatherU32(table.data(), table.size(), ids, n, k,
                                       row);
          });
    }
  }
  for (size_t i = 0; i < me.size(); ++i) {
    double* row = &overlap_scratch_[i * k];
    const motif::Match& m = ml.match(me[i]);
    for (graph::VertexId v : m.vertices) {
      const graph::PartitionId si = p.PartitionOf(v);
      if (si != graph::kNoPartition) row[si] += 1.0;
    }
    if (use_nbrs) {
      nbr_match_tally_.assign(k, 0);
      for (graph::VertexId v : m.vertices) {
        const size_t ci = static_cast<size_t>(
            std::lower_bound(nbr_cached_vertices_.begin(),
                             nbr_cached_vertices_.end(), v) -
            nbr_cached_vertices_.begin());
        util::simd::AddU32(nbr_match_tally_.data(), &nbr_rows_[ci * k], k);
      }
      util::simd::AccumulateScaledU32(row, nbr_match_tally_.data(),
                                      config_.neighbor_bid_weight, k);
    }
  }

  const double smin = static_cast<double>(std::max<size_t>(p.MinSize(), 1));
  const double avg = std::max(
      static_cast<double>(p.NumAssigned()) / static_cast<double>(k), 1.0);

  // Eq. 3 totals for all k partitions in one vectorised pass over the
  // overlap table (bit-identical to the per-partition scalar loops: same
  // per-lane operation order, masked terms contribute exactly +0.0).
  // Muted partitions (at capacity / rationed to zero) take count 0.
  ration_scratch_.resize(k);
  residual_scratch_.resize(k);
  count_scratch_.resize(k);
  support_scratch_.resize(me.size());
  totals_scratch_.resize(k);
  for (size_t i = 0; i < me.size(); ++i) {
    support_scratch_[i] = sort_scratch_[i].support;
  }
  for (graph::PartitionId si = 0; si < k; ++si) {
    const double l = RationWith(static_cast<double>(p.Size(si)), smin, avg);
    ration_scratch_[si] = l;
    residual_scratch_[si] = 1.0 - static_cast<double>(p.Size(si)) /
                                      static_cast<double>(p.Capacity());
    count_scratch_[si] =
        (p.AtCapacity(si) || l <= 0.0)
            ? 0
            : static_cast<uint32_t>(std::min<double>(
                  std::ceil(l * static_cast<double>(me.size())),
                  static_cast<double>(me.size())));
  }
  util::simd::BidTotals(overlap_scratch_.data(), me.size(), k,
                        residual_scratch_.data(), support_scratch_.data(),
                        count_scratch_.data(), totals_scratch_.data());

  graph::PartitionId best = graph::kNoPartition;
  double best_total = 0.0;
  size_t best_count = 0;
  for (graph::PartitionId si = 0; si < k; ++si) {
    if (p.AtCapacity(si)) continue;
    const double l = ration_scratch_[si];
    if (l <= 0.0) continue;
    // Eq. 3 leading l(Si) -- see sweep note in EXPERIMENTS.md
    const double total = totals_scratch_[si] * l;
    if (total > best_total ||
        (total == best_total && total > 0.0 && best != graph::kNoPartition &&
         p.Size(si) < p.Size(best))) {
      best = si;
      best_total = total;
      best_count = count_scratch_[si];
    }
  }

  if (best == graph::kNoPartition || best_total <= 0.0) {
    return decision;  // no positive bid: caller applies its fallback
  }

  decision.partition = best;
  decision.take = best_count;
  return decision;
}

}  // namespace core
}  // namespace loom
