#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace loom {
namespace util {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  if (span == 0) return static_cast<int64_t>(Next64());
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0.0);
  assert(total > 0.0);
  double x = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0) continue;
    acc += weights[i];
    if (x < acc) return i;
  }
  // Floating point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0) return i;
  }
  return 0;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF on the continuous approximation of the Zipf mass function:
  // the integral of x^-s over [1, n+1]. Exact enough for workload skew and
  // far cheaper than building an alias table per call site.
  const double x = UniformDouble();
  if (s == 1.0) {
    const double hn = std::log(static_cast<double>(n) + 1.0);
    const double v = std::exp(x * hn);
    uint64_t r = static_cast<uint64_t>(v) - 1;
    return r >= n ? n - 1 : r;
  }
  const double one_minus_s = 1.0 - s;
  const double top = std::pow(static_cast<double>(n) + 1.0, one_minus_s);
  const double v = std::pow(x * (top - 1.0) + 1.0, 1.0 / one_minus_s);
  uint64_t r = static_cast<uint64_t>(v) - 1;
  return r >= n ? n - 1 : r;
}

}  // namespace util
}  // namespace loom
