// Text serialisation of query workloads, so the CLI tools (and users) can
// describe Q in a file.
//
// Format (line-oriented, '#' comments):
//   <name> <frequency> path:<label>-<label>-...
//   <name> <frequency> cycle:<label>-<label>-...
//   <name> <frequency> star:<center>:<leaf>,<leaf>,...
// Labels are interned into the registry on first sight. Frequencies need not
// sum to 1 (consumers normalise).

#ifndef LOOM_QUERY_WORKLOAD_IO_H_
#define LOOM_QUERY_WORKLOAD_IO_H_

#include <iosfwd>
#include <string>

#include "graph/label_registry.h"
#include "query/query.h"

namespace loom {
namespace query {

/// Parses a workload; throws std::runtime_error on malformed input.
Workload ReadWorkload(std::istream& is, graph::LabelRegistry* registry);

/// Writes a workload in the same format (paths/cycles/stars are emitted as
/// an explicit edge list using the generic `edges:` form below when the
/// shape is not recoverable; all shapes produced by ReadWorkload round-trip).
void WriteWorkload(const Workload& w, const graph::LabelRegistry& registry,
                   std::ostream& os);

/// File-path conveniences.
Workload ReadWorkloadFile(const std::string& path,
                          graph::LabelRegistry* registry);
void WriteWorkloadFile(const Workload& w, const graph::LabelRegistry& registry,
                       const std::string& path);

}  // namespace query
}  // namespace loom

#endif  // LOOM_QUERY_WORKLOAD_IO_H_
