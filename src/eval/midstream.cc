#include "eval/midstream.h"

#include <algorithm>

#include "query/workload_runner.h"

namespace loom {
namespace eval {

namespace {

// Prefix graph over the first `count` stream edges, preserving vertex ids
// and labels of the full graph (untouched vertices are isolated).
graph::LabeledGraph PrefixGraph(const datasets::Dataset& ds,
                                const stream::EdgeStream& es, size_t count) {
  graph::LabeledGraph::Builder b;
  for (graph::VertexId v = 0; v < ds.NumVertices(); ++v) {
    b.AddVertex(ds.graph.label(v));
  }
  for (size_t i = 0; i < count && i < es.size(); ++i) {
    b.AddEdge(es[i].u, es[i].v);
  }
  return b.Build();
}

// Partitioning view with k+1 partitions where every touched-but-unassigned
// vertex lives in partition k (Ptemp).
partition::Partitioning WithPtemp(const partition::Partitioning& p,
                                  const graph::LabeledGraph& prefix,
                                  size_t* in_ptemp, size_t* touched) {
  partition::Partitioning view(p.k() + 1, prefix.NumVertices(), /*nu=*/2.0);
  *in_ptemp = 0;
  *touched = 0;
  for (graph::VertexId v = 0; v < prefix.NumVertices(); ++v) {
    if (prefix.Degree(v) == 0) continue;  // not streamed yet
    ++*touched;
    graph::PartitionId pid = p.PartitionOf(v);
    if (pid == graph::kNoPartition) {
      pid = p.k();  // Ptemp
      ++*in_ptemp;
    }
    view.Assign(v, pid);
  }
  return view;
}

}  // namespace

MidstreamResult RunLoomMidstream(const datasets::Dataset& ds,
                                 const stream::EdgeStream& es,
                                 const engine::EngineOptions& options,
                                 const MidstreamConfig& config) {
  MidstreamResult result;
  if (es.empty() || config.num_checkpoints == 0) return result;

  std::string error;
  const engine::BuildContext context{&ds.workload, ds.registry.size()};
  std::unique_ptr<partition::Partitioner> loom =
      engine::PartitionerRegistry::Global().Create("loom", options, context,
                                                   &error);
  const size_t stride =
      std::max<size_t>(es.size() / config.num_checkpoints, 1);

  size_t next_checkpoint = stride;
  for (size_t i = 0; i < es.size(); ++i) {
    loom->Ingest(es[i]);
    const bool at_stride = i + 1 == next_checkpoint;
    const bool at_end =
        i + 1 == es.size() &&
        (result.checkpoints.empty() ||
         result.checkpoints.back().edges_streamed != i + 1);
    if (at_stride || at_end) {
      next_checkpoint += stride;
      graph::LabeledGraph prefix = PrefixGraph(ds, es, i + 1);
      size_t in_ptemp = 0, touched = 0;
      partition::Partitioning view =
          WithPtemp(loom->partitioning(), prefix, &in_ptemp, &touched);
      query::WorkloadResult wr =
          query::RunWorkload(prefix, view, ds.workload, config.executor);
      CheckpointResult cp;
      cp.edges_streamed = i + 1;
      cp.weighted_ipt = wr.weighted_ipt;
      cp.ptemp_share =
          touched > 0 ? static_cast<double>(in_ptemp) / touched : 0.0;
      result.checkpoints.push_back(cp);
    }
  }

  double total = 0.0;
  for (const CheckpointResult& cp : result.checkpoints) {
    total += cp.weighted_ipt;
  }
  result.mean_weighted_ipt =
      result.checkpoints.empty()
          ? 0.0
          : total / static_cast<double>(result.checkpoints.size());
  return result;
}

}  // namespace eval
}  // namespace loom
