#include "eval/experiment.h"

#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "partition/partition_metrics.h"
#include "query/workload_runner.h"
#include "util/timer.h"

namespace loom {
namespace eval {

std::string ToString(System s) {
  switch (s) {
    case System::kHash: return "hash";
    case System::kLdg: return "ldg";
    case System::kFennel: return "fennel";
    case System::kLoom: return "loom";
  }
  return "?";
}

std::vector<System> AllSystems() {
  return {System::kHash, System::kLdg, System::kFennel, System::kLoom};
}

uint64_t HashAssignment(const partition::Partitioning& p,
                        size_t num_vertices) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (graph::VertexId v = 0; v < num_vertices; ++v) {
    h ^= static_cast<uint64_t>(p.PartitionOf(v)) + 0x9e37 + v;
    h *= 0x100000001b3ULL;
  }
  return h;
}

const SystemResult* ComparisonResult::Find(System s) const {
  for (const SystemResult& r : systems) {
    if (r.system == s) return &r;
  }
  return nullptr;
}

std::unique_ptr<partition::Partitioner> MakePartitioner(
    System system, const datasets::Dataset& ds,
    const ExperimentConfig& config) {
  partition::PartitionerConfig base;
  base.k = config.k;
  base.expected_vertices = ds.NumVertices();
  base.expected_edges = ds.NumEdges();

  switch (system) {
    case System::kHash:
      return std::make_unique<partition::HashPartitioner>(base);
    case System::kLdg:
      return std::make_unique<partition::LdgPartitioner>(base);
    case System::kFennel:
      return std::make_unique<partition::FennelPartitioner>(base);
    case System::kLoom: {
      core::LoomOptions options;
      options.base = base;
      options.window_size = config.window_size;
      options.support_threshold = config.support_threshold;
      options.equal_opportunism = config.equal_opportunism;
      return std::make_unique<core::LoomPartitioner>(options, ds.workload,
                                                     ds.registry.size());
    }
  }
  return nullptr;
}

namespace {

SystemResult RunCommon(System system, const datasets::Dataset& ds,
                       const stream::EdgeStream& es,
                       const ExperimentConfig& config, bool run_queries) {
  SystemResult result;
  result.system = system;

  std::unique_ptr<partition::Partitioner> p =
      MakePartitioner(system, ds, config);
  util::Timer timer;
  for (const stream::StreamEdge& e : es) p->Ingest(e);
  p->Finalize();
  result.partition_ms = timer.ElapsedMs();
  result.ms_per_10k_edges =
      es.empty() ? 0.0
                 : result.partition_ms * 10000.0 /
                       static_cast<double>(es.size());

  result.edges_per_sec = result.partition_ms > 0.0
                             ? 1000.0 * static_cast<double>(es.size()) /
                                   result.partition_ms
                             : 0.0;

  const partition::Partitioning& partitioning = p->partitioning();
  result.edge_cut = partition::EdgeCut(ds.graph, partitioning);
  result.imbalance = partition::Imbalance(partitioning);
  result.assignment_hash = HashAssignment(partitioning, ds.NumVertices());
  if (const auto* loom = dynamic_cast<const core::LoomPartitioner*>(p.get())) {
    result.match_allocs_fresh = loom->match_pool().fresh_allocations();
    result.match_allocs_reused = loom->match_pool().reused_allocations();
  }

  if (run_queries) {
    query::WorkloadResult wr = query::RunWorkload(ds.graph, partitioning,
                                                  ds.workload, config.executor);
    result.weighted_ipt = wr.weighted_ipt;
    result.matches = wr.total_matches;
  }
  return result;
}

}  // namespace

SystemResult RunSystem(System system, const datasets::Dataset& ds,
                       const stream::EdgeStream& es,
                       const ExperimentConfig& config) {
  return RunCommon(system, ds, es, config, /*run_queries=*/true);
}

SystemResult RunSystemTimingOnly(System system, const datasets::Dataset& ds,
                                 const stream::EdgeStream& es,
                                 const ExperimentConfig& config) {
  return RunCommon(system, ds, es, config, /*run_queries=*/false);
}

ComparisonResult RunComparison(const datasets::Dataset& ds,
                               const ExperimentConfig& config) {
  ComparisonResult out;
  out.dataset = ds.meta.name;
  out.order = config.order;
  out.k = config.k;

  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, config.order, config.stream_seed);
  out.stream_edges = es.size();

  double hash_ipt = 0.0;
  for (System s : AllSystems()) {
    SystemResult r = RunSystem(s, ds, es, config);
    if (s == System::kHash) hash_ipt = r.weighted_ipt;
    out.systems.push_back(r);
  }
  for (SystemResult& r : out.systems) {
    r.ipt_vs_hash = hash_ipt > 0.0 ? r.weighted_ipt / hash_ipt
                                   : (r.weighted_ipt > 0.0 ? 1.0 : 0.0);
  }
  return out;
}

}  // namespace eval
}  // namespace loom
