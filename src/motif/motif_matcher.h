// Streaming motif matching (Sec. 3, Alg. 2).
//
// For each edge admitted to the window the matcher discovers every new
// motif-matching sub-graph the edge creates:
//   1. the single-edge match itself,
//   2. extensions: existing matches at either endpoint grown by the new edge
//      (accepted when the factor-delta corresponds to a motif child in the
//      TPSTry++), and
//   3. joins: pairs of existing matches at the two endpoints merged by
//      recursively absorbing the smaller match's edges into the larger
//      (Alg. 2 lines 11-18).
// Matching is purely signature-based: isomorphic sub-graphs always match
// (no false negatives); rare non-isomorphic collisions are tolerated, as the
// paper argues, because a false positive merely co-locates a sub-graph that
// did not need it.
//
// Hot-path design: matches are pooled records addressed by 32-bit handles
// (match_pool.h); endpoint degrees are tracked inside each record, so
// factor deltas never rescan a match's edges against the window; the
// admission test is memoised per label pair (the trie/signature machinery
// runs once per distinct pair, not once per edge); and all per-edge
// working sets live in reusable scratch buffers — steady-state matching
// performs no heap allocation beyond growth of committed match records.

#ifndef LOOM_MOTIF_MOTIF_MATCHER_H_
#define LOOM_MOTIF_MOTIF_MATCHER_H_

#include <cstdint>
#include <vector>

#include "motif/match_list.h"
#include "util/flat_map64.h"
#include "signature/signature_calculator.h"
#include "stream/sliding_window.h"
#include "stream/stream_edge.h"
#include "tpstry/tpstry.h"

namespace loom {
namespace motif {

/// Tunables bounding worst-case work per edge.
struct MatcherConfig {
  /// Cap on live matches considered per endpoint when extending/joining.
  /// Generous by default; prevents pathological quadratic blowups on hub
  /// vertices in adversarial streams.
  size_t max_matches_per_vertex = 64;
};

/// Running counters for reporting and tests.
struct MatcherStats {
  uint64_t edges_admitted = 0;
  uint64_t single_edge_matches = 0;
  uint64_t extension_matches = 0;
  uint64_t join_matches = 0;
  uint64_t join_attempts = 0;
};

class MotifMatcher {
 public:
  /// `trie` and `calc` must outlive the matcher.
  MotifMatcher(const tpstry::Tpstry* trie,
               const signature::SignatureCalculator* calc,
               MatcherConfig config = {});

  /// The admission test (Sec. 3): the single-edge motif `e` matches, or
  /// nullptr if none — in which case `e` can never participate in any motif
  /// match and should be assigned immediately without entering the window.
  /// Memoised per (label_u, label_v); call InvalidateMotifCache after the
  /// trie's supports change.
  const tpstry::TpsNode* SingleEdgeMotif(const stream::StreamEdge& e) const;

  /// Drops the memoised admission table and re-sizes it to the calculator's
  /// CURRENT label count. Must be called whenever the trie's motif set may
  /// have changed (workload drift / threshold updates) or the label alphabet
  /// grew (open-alphabet streams; see LabelValues::EnsureLabels).
  void InvalidateMotifCache();

  /// Labels this matcher's admission memo currently covers.
  size_t num_labels() const { return admission_side_; }

  /// Overwrites the running counters (checkpoint restore only; the memo
  /// tables are pure caches and rebuild themselves, but the counters feed
  /// FinalStatsEvent and must survive).
  void RestoreStats(const MatcherStats& stats) { stats_ = stats; }

  /// Processes an edge that has just been pushed into `window` (it must
  /// match a single-edge motif). Registers every newly formed match in `ml`.
  void OnEdgeAdded(const stream::StreamEdge& e,
                   const stream::SlidingWindow& window, MatchList* ml);

  const MatcherStats& stats() const { return stats_; }

 private:
  /// Attempts to extend match `mh` by edge `e`; on success builds the grown
  /// match and registers it. Returns the new handle or kNullMatch.
  MatchHandle TryExtend(MatchHandle mh, const stream::StreamEdge& e,
                        MatchList* ml);

  /// Attempts to absorb all of `smaller`'s edges into `base` (Alg. 2 lines
  /// 11-18), registering the joined match on success.
  void TryJoin(MatchHandle base, MatchHandle smaller,
               const stream::SlidingWindow& window, MatchList* ml);

  /// Recursive work-horse of TryJoin: grows the candidate in `cand_` (node
  /// `node_id`) by any absorbable edge from `remaining`; succeeds when
  /// `remaining` empties.
  bool JoinRecurse(uint32_t node_id, std::vector<graph::EdgeId>& remaining,
                   const stream::SlidingWindow& window, MatchList* ml);

  const tpstry::Tpstry* trie_;
  const signature::SignatureCalculator* calc_;
  MatcherConfig config_;
  MatcherStats stats_;

  /// Admission memo: label-pair -> single-edge motif node (nullable), laid
  /// out as a dense num_labels x num_labels table with a known-bit per cell.
  mutable std::vector<const tpstry::TpsNode*> admission_;
  mutable std::vector<uint8_t> admission_known_;
  size_t admission_side_ = 0;

  /// Motif-child memo: (node, canonical factor delta) -> child (nullable).
  /// FindMotifChild runs several multiset comparisons plus a support check
  /// per child; the matcher asks it millions of times for a handful of
  /// distinct (node, delta) pairs. Keys pack the node id and the three
  /// sorted delta factors into 64 bits; inputs that don't fit (prime or trie
  /// beyond 16 bits — never the paper's configurations) bypass the memo.
  const tpstry::TpsNode* FindMotifChildMemo(uint32_t node_id);
  void RefreshExtendability();
  util::FlatMap64<const tpstry::TpsNode*> child_memo_;

  /// Cached trie.MaxMotifEdges() (refreshed with the motif caches): any
  /// extension or join whose result would exceed it can never be a motif
  /// child chain, so those attempts are pruned before touching signatures.
  uint32_t max_motif_edges_ = 0;

  /// Per-trie-node flag: does the node have ANY motif child? Most live
  /// matches sit at leaf/maximal motifs, where every extend/join attempt is
  /// doomed — this skips them before computing factor deltas.
  std::vector<uint8_t> node_extendable_;

  // Reusable per-edge scratch (see class comment).
  std::vector<MatchHandle> snap_u_;
  std::vector<MatchHandle> snap_v_;
  std::vector<MatchHandle> snap_sorted_;
  std::vector<size_t> snap_u_sizes_;  // edge counts, resolved once per snap
  std::vector<size_t> snap_v_sizes_;
  signature::FactorDelta delta_;
  Match cand_;  // join candidate accumulator
  std::vector<graph::EdgeId> remaining_;
};

}  // namespace motif
}  // namespace loom

#endif  // LOOM_MOTIF_MOTIF_MATCHER_H_
