// Micro-benchmarks for streaming ingestion: edges/second through each
// partitioner on a pre-materialised provgen stream. This is Table 2's
// measure expressed as throughput, suitable for regression tracking.

#include <benchmark/benchmark.h>

#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "stream/stream_order.h"

namespace {

using namespace loom;

struct Fixture {
  datasets::Dataset ds;
  stream::EdgeStream es;
  Fixture()
      : ds(datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.2)),
        es(stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst)) {}
};

Fixture& GetFixture() {
  static Fixture f;
  return f;
}

void RunSystemBench(benchmark::State& state, eval::System system) {
  Fixture& f = GetFixture();
  eval::ExperimentConfig cfg;
  cfg.window_size = 2000;
  for (auto _ : state) {
    auto p = eval::MakePartitioner(system, f.ds, cfg);
    for (const auto& e : f.es) p->Ingest(e);
    p->Finalize();
    benchmark::DoNotOptimize(p->partitioning().NumAssigned());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.es.size()));
}

void BM_IngestHash(benchmark::State& state) {
  RunSystemBench(state, eval::System::kHash);
}
void BM_IngestLdg(benchmark::State& state) {
  RunSystemBench(state, eval::System::kLdg);
}
void BM_IngestFennel(benchmark::State& state) {
  RunSystemBench(state, eval::System::kFennel);
}
void BM_IngestLoom(benchmark::State& state) {
  RunSystemBench(state, eval::System::kLoom);
}

BENCHMARK(BM_IngestHash)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestLdg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestFennel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestLoom)->Unit(benchmark::kMillisecond);

}  // namespace
