#include "io/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace loom {
namespace io {

namespace {

// File layout (little-endian):
//   [0..5]  magic "LOOMCK"
//   [6..7]  uint16 format version
// then per section:
//   u8 'S', u16 name_len, name bytes, u64 payload_len, u64 FNV-1a(payload),
//   payload bytes
// then a u8 'E' trailer marker. The trailer is what distinguishes "last
// section ended exactly at EOF" from "file truncated after a section".
constexpr char kMagic[6] = {'L', 'O', 'O', 'M', 'C', 'K'};
constexpr uint8_t kSectionMarker = 'S';
constexpr uint8_t kTrailerMarker = 'E';
constexpr size_t kMaxSectionName = 256;

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv(const char* bytes, size_t n) {
  uint64_t h = kFnvOffset;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
void AppendRaw(std::vector<char>* out, T value) {
  const char* p = reinterpret_cast<const char*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

[[noreturn]] void FailAt(const std::string& path, const std::string& detail) {
  throw std::runtime_error("checkpoint '" + path + "': " + detail);
}

/// fsyncs the directory containing `path` so the rename itself is durable.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fds
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

// ----------------------------------------------------------------- writer

void CheckpointWriter::BeginSection(std::string_view name) {
  if (in_section_) {
    throw std::runtime_error("checkpoint writer: BeginSection('" +
                             std::string(name) + "') inside an open section");
  }
  if (name.empty() || name.size() > kMaxSectionName) {
    throw std::runtime_error("checkpoint writer: bad section name length");
  }
  for (const Section& s : sections_) {
    if (s.name == name) {
      throw std::runtime_error("checkpoint writer: duplicate section '" +
                               std::string(name) + "'");
    }
  }
  sections_.push_back(Section{std::string(name), {}});
  in_section_ = true;
}

void CheckpointWriter::EndSection() {
  if (!in_section_) {
    throw std::runtime_error("checkpoint writer: EndSection with no section");
  }
  in_section_ = false;
}

void CheckpointWriter::Raw(const void* data, size_t n) {
  if (!in_section_) {
    throw std::runtime_error("checkpoint writer: write outside a section");
  }
  const char* p = static_cast<const char*>(data);
  sections_.back().payload.insert(sections_.back().payload.end(), p, p + n);
}

void CheckpointWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  Raw(s.data(), s.size());
}

void CheckpointWriter::Commit(const std::string& path) {
  if (in_section_) {
    throw std::runtime_error("checkpoint writer: Commit with an open section");
  }
  if (committed_) {
    throw std::runtime_error("checkpoint writer: double Commit");
  }
  committed_ = true;

  std::vector<char> file;
  file.insert(file.end(), kMagic, kMagic + sizeof(kMagic));
  AppendRaw(&file, kCheckpointVersion);
  for (const Section& s : sections_) {
    AppendRaw(&file, kSectionMarker);
    AppendRaw(&file, static_cast<uint16_t>(s.name.size()));
    file.insert(file.end(), s.name.begin(), s.name.end());
    AppendRaw(&file, static_cast<uint64_t>(s.payload.size()));
    AppendRaw(&file, Fnv(s.payload.data(), s.payload.size()));
    file.insert(file.end(), s.payload.begin(), s.payload.end());
  }
  AppendRaw(&file, kTrailerMarker);

  // Atomic durable publish: tmp + fsync + rename + parent-dir fsync. A crash
  // at any point leaves either the previous `path` intact or the new one
  // complete — never a torn file under the final name.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) FailAt(tmp, "cannot open for writing");
  size_t off = 0;
  while (off < file.size()) {
    const ssize_t n = ::write(fd, file.data() + off, file.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      FailAt(tmp, "write failed");
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    FailAt(tmp, "fsync failed");
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    FailAt(path, "rename from tmp failed");
  }
  SyncParentDir(path);
}

// ----------------------------------------------------------------- reader

CheckpointReader::CheckpointReader(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) FailAt(path_, "cannot open for reading");
  const std::streamoff size = in.tellg();
  in.seekg(0);
  data_.resize(static_cast<size_t>(size));
  in.read(data_.data(), size);
  if (static_cast<std::streamoff>(in.gcount()) != size) {
    FailAt(path_, "short read");
  }

  size_t p = 0;
  auto need = [&](size_t n, const char* what) {
    if (p + n > data_.size()) {
      FailAt(path_, std::string("truncated (") + what + " cut short at byte " +
                        std::to_string(p) + " of " +
                        std::to_string(data_.size()) + ")");
    }
  };
  need(sizeof(kMagic) + 2, "header");
  if (std::memcmp(data_.data(), kMagic, sizeof(kMagic)) != 0) {
    FailAt(path_, "bad magic: not a LOOMCK checkpoint file");
  }
  p += sizeof(kMagic);
  uint16_t version;
  std::memcpy(&version, data_.data() + p, 2);
  p += 2;
  if (version != kCheckpointVersion) {
    FailAt(path_, "unsupported format version " + std::to_string(version) +
                      " (this reader speaks v" +
                      std::to_string(kCheckpointVersion) + ")");
  }

  bool saw_trailer = false;
  while (p < data_.size()) {
    const uint8_t marker = static_cast<uint8_t>(data_[p]);
    ++p;
    if (marker == kTrailerMarker) {
      saw_trailer = true;
      if (p != data_.size()) FailAt(path_, "trailing bytes after the trailer");
      break;
    }
    if (marker != kSectionMarker) {
      FailAt(path_, "corrupt section framing at byte " + std::to_string(p - 1));
    }
    need(2, "section name length");
    uint16_t name_len;
    std::memcpy(&name_len, data_.data() + p, 2);
    p += 2;
    if (name_len == 0 || name_len > kMaxSectionName) {
      FailAt(path_, "corrupt section name length");
    }
    need(name_len, "section name");
    std::string name(data_.data() + p, name_len);
    p += name_len;
    need(16, "section header");
    uint64_t length, checksum;
    std::memcpy(&length, data_.data() + p, 8);
    std::memcpy(&checksum, data_.data() + p + 8, 8);
    p += 16;
    need(static_cast<size_t>(length), ("section '" + name + "' payload").c_str());
    if (Fnv(data_.data() + p, static_cast<size_t>(length)) != checksum) {
      FailAt(path_, "section '" + name +
                        "' checksum mismatch (file corrupt or torn write)");
    }
    if (FindSection(name) != nullptr) {
      FailAt(path_, "duplicate section '" + name + "'");
    }
    sections_.push_back(Section{std::move(name), p, static_cast<size_t>(length)});
    p += static_cast<size_t>(length);
  }
  if (!saw_trailer) {
    FailAt(path_, "truncated (missing trailer; torn write or partial copy)");
  }
}

const CheckpointReader::Section* CheckpointReader::FindSection(
    std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool CheckpointReader::Has(std::string_view name) const {
  return FindSection(name) != nullptr;
}

void CheckpointReader::Open(std::string_view name) {
  if (open_ != nullptr) {
    FailAt(path_, "Open('" + std::string(name) + "') while section '" +
                      open_->name + "' is open");
  }
  const Section* s = FindSection(name);
  if (s == nullptr) {
    std::string present;
    for (const Section& sec : sections_) {
      if (!present.empty()) present += ", ";
      present += sec.name;
    }
    FailAt(path_, "missing section '" + std::string(name) + "' (present: " +
                      (present.empty() ? "none" : present) + ")");
  }
  open_ = s;
  pos_ = s->offset;
}

void CheckpointReader::Close() {
  if (open_ == nullptr) FailAt(path_, "Close with no open section");
  const uint64_t left = Remaining();
  if (left != 0) {
    FailAt(path_, "section '" + open_->name + "' has " + std::to_string(left) +
                      " unread bytes (layout skew between writer and reader)");
  }
  open_ = nullptr;
}

uint64_t CheckpointReader::Remaining() const {
  if (open_ == nullptr) return 0;
  return open_->offset + open_->length - pos_;
}

void CheckpointReader::CheckRemaining(uint64_t need, const char* what) {
  if (open_ == nullptr) FailAt(path_, "read outside a section");
  if (need > Remaining()) {
    FailAt(path_, "section '" + open_->name + "' ends mid-" + what +
                      " (layout skew between writer and reader)");
  }
}

uint8_t CheckpointReader::U8() {
  CheckRemaining(1, "field");
  return static_cast<uint8_t>(data_[pos_++]);
}

uint16_t CheckpointReader::U16() {
  CheckRemaining(2, "field");
  uint16_t v;
  std::memcpy(&v, Cursor(), 2);
  pos_ += 2;
  return v;
}

uint32_t CheckpointReader::U32() {
  CheckRemaining(4, "field");
  uint32_t v;
  std::memcpy(&v, Cursor(), 4);
  pos_ += 4;
  return v;
}

uint64_t CheckpointReader::U64() {
  CheckRemaining(8, "field");
  uint64_t v;
  std::memcpy(&v, Cursor(), 8);
  pos_ += 8;
  return v;
}

std::string CheckpointReader::Str() {
  const uint32_t len = U32();
  CheckRemaining(len, "string");
  std::string s(Cursor(), len);
  pos_ += len;
  return s;
}

void CheckpointReader::Fail(const std::string& detail) const {
  FailAt(path_, detail);
}

}  // namespace io
}  // namespace loom
