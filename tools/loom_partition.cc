// loom_partition — partition a labelled graph (or a pre-exported edge
// stream) for a workload file.
//
// Usage:
//   loom_partition --graph G.lg --workload Q.lw [--system loom] [--k 8]
//                  [--order bfs|dfs|random|canonical] [--window 10000]
//                  [--threshold 0.4] [--shards N] [--opt key=value]...
//                  [--seed N] [--out assignment.tsv]
//                  [--output-assignments assignment.tsv] [--evaluate]
//   loom_partition --input S.les --workload Q.lw [flags as above]
//
// Two stream sources:
//   --graph: read a graph/graph_io.h file and stream it in --order through
//     the engine's lazy GraphEdgeSource (exactly as before).
//   --input: replay a loom-edge-stream file (io/edge_stream_io.h, binary
//     or text, e.g. from `loom_generate --write-stream`) through
//     io::FileEdgeSource in bounded-memory batches — the
//     larger-than-RAM path; the arrival order is the file's, so --order
//     is ignored. Edge-cut under --evaluate is then computed by replaying
//     the stream (cut = streamed edges with endpoints apart), and workload
//     ipt — which needs the materialised graph — is skipped.
//
// Every run goes through engine::Session: backends are resolved as
// registry specs (--system accepts "name" or "name:key=value,...", --opt
// exposes every EngineOptions key, see --help-opts), assignments leave
// through an io::AssignmentSink bound to the session (--out/
// --output-assignments write the familiar "<vertex>\t<partition>" lines;
// stdout when neither is given), and the progress/final-stats lines come
// from the session's observer events. Edge backends (hdrf, dbh, hep) can
// also stream per-edge placements to --edge-out as "<u>\t<v>\t<partition>".
//
// A third, offline mode rebalances a RECORDED edge assignment instead of
// streaming anything:
//   loom_partition --rebalance-to K --edge-assignments A.tsv
//                  [--balance-cap F] [--edge-out MERGED.tsv]
// reads a --edge-out file produced at some k', runs the split-merge pass
// (partition/edge/split_merge.h) down to K, prints the input / merged /
// naive-modulo quality triples, and optionally writes the merged
// assignment back out in the same format.

#include <algorithm>
#include <csignal>
#include <cstring>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <fstream>

#include "engine/latency_observer.h"
#include "engine/session.h"
#include "graph/graph_io.h"
#include "io/assignment_sink.h"
#include "io/edge_stream_io.h"
#include "partition/edge/split_merge.h"
#include "partition/partition_metrics.h"
#include "query/workload_io.h"
#include "query/workload_runner.h"
#include "util/string_util.h"
#include "util/table_writer.h"

namespace {

// SIGINT/SIGTERM request a graceful stop: the drive loop polls this between
// slices, finishes the slice in flight, writes a final rotating checkpoint
// (when --checkpoint is set), flushes the sink and exits 0 with a resume
// hint — never mid-decision, never a torn output file.
volatile std::sig_atomic_t g_stop_signal = 0;

void HandleStopSignal(int sig) { g_stop_signal = sig; }

struct Args {
  std::string graph_path;
  std::string input_path;  // edge-stream file (alternative to --graph)
  std::string workload_path;
  std::string out_path;
  std::string edge_out_path;  // per-edge placements (edge backends only)
  std::string system = "loom";
  std::string order = "bfs";
  std::vector<std::string> opts;  // raw key=value overrides
  std::string checkpoint_path;    // rotating LOOMCK snapshots while driving
  std::string resume_path;        // restore this checkpoint before driving
  uint64_t checkpoint_every = 100000;  // snapshot cadence, in edges
  uint32_t k = 8;
  size_t window = 10000;
  double threshold = 0.4;
  uint32_t shards = 0;  // 0 = leave the EngineOptions default
  uint64_t seed = 0x10c5;
  bool evaluate = false;
  bool progress = false;  // per-slice progress + decision-latency histogram
  // Offline rebalance mode (--rebalance-to > 0 switches to it entirely).
  std::string edge_assignments_path;  // recorded --edge-out file to merge
  uint32_t rebalance_to = 0;          // target part count (0 = streaming mode)
  double balance_cap = 1.1;           // merge feasibility cap
};

void Usage() {
  std::cerr << "usage: loom_partition (--graph G.lg | --input S.les)\n"
               "         --workload Q.lw\n"
               "         [--system NAME | NAME:key=value,...] [--k N]\n"
               "         [--order bfs|dfs|random|canonical] [--window N]\n"
               "         [--threshold F] [--shards N] [--opt key=value]...\n"
               "         [--seed N] [--out FILE | --output-assignments FILE]\n"
               "         [--edge-out FILE]\n"
               "         [--checkpoint FILE] [--checkpoint-every EDGES]\n"
               "         [--resume FILE] [--evaluate] [--progress]\n"
               "         [--help-opts]\n"
               "       loom_partition --rebalance-to K\n"
               "         --edge-assignments A.tsv [--balance-cap F]\n"
               "         [--edge-out MERGED.tsv]\n"
               "signals:\n"
               "  SIGINT/SIGTERM stop gracefully: the slice in flight\n"
               "    finishes, a final checkpoint rotates (with --checkpoint),\n"
               "    the sink flushes, exit code 0; rerun with --resume to\n"
               "    continue bit-identically\n"
               "checkpointing:\n"
               "  --checkpoint FILE        write a LOOMCK snapshot to FILE\n"
               "    every --checkpoint-every edges (default 100000) and keep\n"
               "    the previous one at FILE.prev — a crash (even mid-commit)\n"
               "    always leaves one complete checkpoint behind\n"
               "  --resume FILE            restore FILE (falling back to\n"
               "    FILE.prev if FILE is missing or corrupt), skip the stream\n"
               "    to the saved cursor, re-emit the restored assignments and\n"
               "    keep driving; the finished run is bit-identical to an\n"
               "    uninterrupted one. Flags must match the checkpointed run.\n"
               "backends: ";
  bool first = true;
  for (const std::string& name :
       loom::engine::PartitionerRegistry::Global().Names()) {
    std::cerr << (first ? "" : ", ") << name;
    first = false;
  }
  std::cerr << "\n";
}

void UsageOpts() {
  loom::engine::EngineOptions defaults;
  std::cerr << "EngineOptions keys (every --opt / spec-string key, with "
               "defaults):\n";
  for (const auto& info : loom::engine::EngineOptions::KeyTable()) {
    std::cerr << "  " << info.name << "=" << defaults.Get(info.name) << "\n"
              << "      " << info.help << "  (" << info.spec << ")\n";
  }
}

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--graph") == 0) {
      const char* v = need_value("--graph");
      if (!v) return false;
      args->graph_path = v;
    } else if (std::strcmp(argv[i], "--input") == 0) {
      const char* v = need_value("--input");
      if (!v) return false;
      args->input_path = v;
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      const char* v = need_value("--workload");
      if (!v) return false;
      args->workload_path = v;
    } else if (std::strcmp(argv[i], "--out") == 0 ||
               std::strcmp(argv[i], "--output-assignments") == 0) {
      const char* v = need_value(argv[i]);
      if (!v) return false;
      args->out_path = v;
    } else if (std::strcmp(argv[i], "--edge-out") == 0) {
      const char* v = need_value("--edge-out");
      if (!v) return false;
      args->edge_out_path = v;
    } else if (std::strcmp(argv[i], "--system") == 0) {
      const char* v = need_value("--system");
      if (!v) return false;
      args->system = v;
    } else if (std::strcmp(argv[i], "--order") == 0) {
      const char* v = need_value("--order");
      if (!v) return false;
      args->order = v;
    } else if (std::strcmp(argv[i], "--opt") == 0) {
      const char* v = need_value("--opt");
      if (!v) return false;
      args->opts.emplace_back(v);
    } else if (std::strcmp(argv[i], "--k") == 0) {
      const char* v = need_value("--k");
      if (!v) return false;
      args->k = static_cast<uint32_t>(std::stoul(v));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      const char* v = need_value("--window");
      if (!v) return false;
      args->window = std::stoul(v);
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      const char* v = need_value("--threshold");
      if (!v) return false;
      // Not std::stod: it accepts "nan"/"inf", which then sail through
      // every downstream range check (NaN fails all ordered comparisons).
      if (!loom::util::ParseFiniteDouble(v, &args->threshold)) {
        std::cerr << "--threshold needs a finite number, got '" << v << "'\n";
        return false;
      }
    } else if (std::strcmp(argv[i], "--balance-cap") == 0) {
      const char* v = need_value("--balance-cap");
      if (!v) return false;
      if (!loom::util::ParseFiniteDouble(v, &args->balance_cap) ||
          args->balance_cap < 1.0) {
        std::cerr << "--balance-cap needs a finite number >= 1, got '" << v
                  << "'\n";
        return false;
      }
    } else if (std::strcmp(argv[i], "--rebalance-to") == 0) {
      const char* v = need_value("--rebalance-to");
      if (!v) return false;
      args->rebalance_to = static_cast<uint32_t>(std::stoul(v));
      if (args->rebalance_to == 0) {
        std::cerr << "--rebalance-to must be positive\n";
        return false;
      }
    } else if (std::strcmp(argv[i], "--edge-assignments") == 0) {
      const char* v = need_value("--edge-assignments");
      if (!v) return false;
      args->edge_assignments_path = v;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = need_value("--shards");
      if (!v) return false;
      args->shards = static_cast<uint32_t>(std::stoul(v));
    } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
      const char* v = need_value("--checkpoint");
      if (!v) return false;
      args->checkpoint_path = v;
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      const char* v = need_value("--checkpoint-every");
      if (!v) return false;
      args->checkpoint_every = std::stoull(v);
      if (args->checkpoint_every == 0) {
        std::cerr << "--checkpoint-every must be positive\n";
        return false;
      }
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      const char* v = need_value("--resume");
      if (!v) return false;
      args->resume_path = v;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = need_value("--seed");
      if (!v) return false;
      args->seed = std::stoull(v);
    } else if (std::strcmp(argv[i], "--evaluate") == 0) {
      args->evaluate = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      args->progress = true;
    } else if (std::strcmp(argv[i], "--help-opts") == 0) {
      UsageOpts();
      std::exit(0);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return false;
    }
  }
  if (args->rebalance_to > 0) {
    // Offline rebalance mode: no stream, no workload — just the recorded
    // assignment.
    if (args->edge_assignments_path.empty()) {
      std::cerr << "--rebalance-to needs --edge-assignments FILE (a recorded "
                   "--edge-out file)\n";
      return false;
    }
    return true;
  }
  if (args->graph_path.empty() == args->input_path.empty()) {
    std::cerr << "exactly one of --graph / --input is required\n";
    return false;
  }
  if (args->workload_path.empty()) {
    std::cerr << "--workload is required\n";
    return false;
  }
  return true;
}

void PrintTriple(const char* tag, uint32_t parts,
                 const loom::partition::edge::EdgeQuality& q) {
  std::cerr << tag << ": k=" << parts << ", replication factor "
            << loom::util::TableWriter::Fmt(q.replication_factor, 3)
            << ", edge balance "
            << loom::util::TableWriter::Fmt(q.edge_balance, 3)
            << ", edge assignment hash 0x" << std::hex
            << q.edge_assignment_hash << std::dec << "\n";
}

int RunRebalance(const Args& args) {
  using namespace loom::partition::edge;
  std::vector<EdgeAssignmentRecord> records;
  std::string error;
  if (!LoadEdgeAssignments(args.edge_assignments_path, &records, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  SplitMergeOptions options;
  options.target_k = args.rebalance_to;
  options.balance_cap = args.balance_cap;
  SplitMergeResult result;
  if (!SplitMerge(records, options, &result, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::cerr << "rebalanced " << records.size() << " edges: "
            << result.input_parts << " parts -> " << options.target_k
            << " (balance cap "
            << loom::util::TableWriter::Fmt(options.balance_cap, 2) << ")\n";
  PrintTriple("input", result.input_parts, result.input_quality);
  PrintTriple("merged", options.target_k, result.quality);
  // The strawman the greedy has to beat: fold parts together mod k.
  const EdgeQuality naive = EvaluateMerged(
      records, NaiveModuloMerge(result.input_parts, options.target_k),
      options.target_k);
  PrintTriple("naive-modulo", options.target_k, naive);
  if (!args.edge_out_path.empty()) {
    std::ofstream out(args.edge_out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "error: cannot open " << args.edge_out_path << "\n";
      return 1;
    }
    for (const EdgeAssignmentRecord& rec : records) {
      out << rec.u << '\t' << rec.v << '\t'
          << result.atom_to_part[rec.partition] << '\n';
    }
    std::cerr << "merged assignment written to " << args.edge_out_path
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loom;
  Args args;
  try {
    if (!Parse(argc, argv, &args)) {
      Usage();
      return 2;
    }
  } catch (const std::exception&) {
    // std::stoul/stod on a malformed numeric flag — print usage, don't
    // abort with an unhandled exception.
    std::cerr << "malformed numeric flag value\n";
    Usage();
    return 2;
  }

  if (args.rebalance_to > 0) {
    try {
      return RunRebalance(args);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  try {
    const bool from_file = !args.input_path.empty();

    // The stream source and its sizing. With --graph everything comes from
    // the materialised graph; with --input, from the stream file's header.
    datasets::Dataset ds;
    std::unique_ptr<engine::EdgeSource> source;
    io::FileEdgeSource* seekable = nullptr;  // set when --input (for SkipTo)
    size_t expected_vertices = 0, expected_edges = 0;
    if (from_file) {
      auto file_source = std::make_unique<io::FileEdgeSource>(args.input_path);
      const io::EdgeStreamInfo& info = file_source->info();
      std::string error;
      if (!file_source->InternLabels(&ds.registry, &error)) {
        std::cerr << "error: " << error << "\n";
        return 2;
      }
      expected_vertices = info.vertex_count;
      expected_edges = info.edge_count;
      ds.meta.name = args.input_path;
      std::cerr << "stream: " << info.edge_count << " edges over "
                << info.vertex_count << " vertices, " << info.labels.size()
                << " labels (" << io::ToString(info.format) << ")\n";
      seekable = file_source.get();
      source = std::move(file_source);
    } else {
      ds.meta.name = args.graph_path;
      ds.graph = graph::ReadGraphFile(args.graph_path, &ds.registry);
      expected_vertices = ds.NumVertices();
      expected_edges = ds.NumEdges();
      std::cerr << "graph: " << ds.NumVertices() << " vertices, "
                << ds.NumEdges() << " edges, " << ds.NumLabels()
                << " labels\n";
      stream::StreamOrder order;
      if (!stream::ParseStreamOrder(args.order, &order)) {
        std::cerr << "unknown order: " << args.order << "\n";
        return 2;
      }
      source = engine::MakeEdgeSource(ds.graph, order, args.seed);
    }
    ds.workload = query::ReadWorkloadFile(args.workload_path, &ds.registry);
    std::cerr << "workload: " << ds.workload.size() << " queries\n";

    // Dedicated flags are sugar over EngineOptions keys; --opt overrides
    // (and the --system spec's inline overrides) win in that order.
    engine::SessionConfig session_config;
    session_config.spec = args.system;
    engine::EngineOptions& options = session_config.options;
    options.k = args.k;
    options.expected_vertices = expected_vertices;
    options.expected_edges = expected_edges;
    options.window_size = args.window;
    options.support_threshold = args.threshold;
    if (args.shards > 0) options.shards = args.shards;
    std::string error;
    if (!options.ApplyOverrides(args.opts, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }

    engine::BuildContext context{&ds.workload, ds.registry.size()};
    std::unique_ptr<engine::Session> session;
    if (!args.resume_path.empty()) {
      // Each resume attempt needs a session built from scratch (a rejected
      // restore may have half-mutated its backend); the helper tries the
      // good slot first, then the rotation's ".prev".
      bool used_fallback = false;
      session = engine::ResumeSessionWithFallback(
          [&](std::string* err) {
            return engine::Session::Create(session_config, context, err);
          },
          args.resume_path, &error, &used_fallback);
      if (session == nullptr) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      std::cerr << "resumed from "
                << (used_fallback ? args.resume_path + ".prev"
                                  : args.resume_path)
                << " at edge " << session->edges_ingested() << "\n";
    } else {
      session = engine::Session::Create(session_config, context, &error);
      if (session == nullptr) {
        std::cerr << "error: " << error << "\n";
        return 2;
      }
    }

    // Assignments leave through a session-bound sink, in placement order —
    // nothing buffers the vertex set, so --input streams stay bounded.
    std::unique_ptr<io::AssignmentSink> sink;
    if (!args.out_path.empty()) {
      sink = std::make_unique<io::FileAssignmentSink>(args.out_path);
    } else {
      class StdoutSink : public io::AssignmentSink {
        void Append(graph::VertexId v, graph::PartitionId p) override {
          std::cout << v << '\t' << p << '\n';
        }
      };
      sink = std::make_unique<StdoutSink>();
    }
    // On resume the sink starts from scratch (a SIGKILLed run's output file
    // is at an arbitrary point): re-emit every restored placement, in
    // vertex-id order, before live assignments start appending. The full
    // output therefore covers exactly what an uninterrupted run covers —
    // compare the two as sets (sort | diff), since placement order differs.
    if (!args.resume_path.empty()) {
      const std::span<const graph::PartitionId> restored =
          session->partitioning().assignments();
      for (size_t v = 0; v < restored.size(); ++v) {
        if (restored[v] != graph::kNoPartition) {
          sink->Append(static_cast<graph::VertexId>(v), restored[v]);
        }
      }
      // Skip the stream to the saved cursor: seekable files seek, other
      // sources (deterministic graph orders) replay and discard.
      const uint64_t start = session->edges_ingested();
      if (seekable != nullptr) {
        seekable->SkipTo(start);
      } else {
        std::vector<stream::StreamEdge> scratch(4096);
        uint64_t skipped = 0;
        while (skipped < start) {
          const size_t want = static_cast<size_t>(
              std::min<uint64_t>(scratch.size(), start - skipped));
          const size_t n = source->NextBatch(
              std::span<stream::StreamEdge>(scratch.data(), want));
          if (n == 0) {
            std::cerr << "error: stream ran dry at edge " << skipped
                      << " while skipping to the checkpoint cursor " << start
                      << " (different --graph/--order/--seed than the "
                         "checkpointed run?)\n";
            return 1;
          }
          skipped += n;
        }
      }
    }
    session->AddSink(sink.get());
    // Edge backends (hdrf, dbh) additionally place every EDGE; --edge-out
    // captures those placements as "<u>\t<v>\t<partition>" lines. Unlike
    // vertex assignments, per-edge history is not part of checkpoint state,
    // so on --resume the file only holds post-resume edges.
    std::unique_ptr<io::FileEdgeAssignmentSink> edge_sink;
    if (!args.edge_out_path.empty()) {
      edge_sink = std::make_unique<io::FileEdgeAssignmentSink>(
          args.edge_out_path);
      session->AddEdgeSink(edge_sink.get());
      if (!args.resume_path.empty()) {
        std::cerr << "note: --edge-out on a resumed run only records edges "
                     "ingested after the checkpoint (per-edge history is not "
                     "checkpointed)\n";
      }
    }
    engine::LatencyObserver latency;
    if (args.progress) session->AddObserver(&latency);

    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);

    // Step the stream in slices (checkpoint-sized when --checkpoint is set,
    // a polling granule otherwise), rotating a snapshot after each full
    // slice; the last (short) slice runs straight into Finish. Run() and
    // IngestSome+Finish fire the same events in the same order, so reports
    // are identical either way. The slice boundary is also where
    // SIGINT/SIGTERM is honoured.
    const uint64_t slice = args.checkpoint_path.empty()
                               ? uint64_t{1} << 16
                               : args.checkpoint_every;
    bool interrupted = false;
    for (;;) {
      if (g_stop_signal != 0) {
        interrupted = true;
        break;
      }
      const size_t n = session->IngestSome(*source, static_cast<size_t>(slice));
      if (args.progress && n > 0) {
        std::cerr << "progress: " << session->edges_ingested()
                  << " edges, latency["
                  << latency.histogram().Snapshot().Summary() << "]\n";
      }
      if (n < slice) break;
      if (!args.checkpoint_path.empty()) {
        if (!engine::CheckpointSessionRotating(session.get(),
                                               args.checkpoint_path, &error)) {
          std::cerr << "error: " << error << "\n";
          return 1;
        }
        std::cerr << "checkpointed " << session->edges_ingested()
                  << " edges to " << args.checkpoint_path << "\n";
      }
    }
    if (interrupted) {
      // Graceful stop: no finalize (a finalized prefix diverges from the
      // resumed full run) — checkpoint what was decided, flush, exit clean.
      if (!args.checkpoint_path.empty()) {
        if (!engine::CheckpointSessionRotating(session.get(),
                                               args.checkpoint_path, &error)) {
          std::cerr << "error: final checkpoint failed: " << error << "\n";
          return 1;
        }
      }
      sink->Flush();
      std::cerr << "interrupted by signal " << g_stop_signal << " at edge "
                << session->edges_ingested();
      if (!args.checkpoint_path.empty()) {
        std::cerr << "; checkpointed to " << args.checkpoint_path
                  << " — rerun with --resume " << args.checkpoint_path
                  << " to continue";
      }
      std::cerr << "\n";
      return 0;
    }
    engine::RunReport report = session->Finish();
    std::cerr << "partitioned " << report.edges << " edges in "
              << util::TableWriter::Fmt(report.ms, 0) << " ms ("
              << report.backend << ", k=" << session->partitioning().k()
              << ", " << report.events.vertices_assigned
              << " vertices assigned)\n";
    if (args.progress) {
      std::cerr << "decision latency (ns/edge, batch means): "
                << latency.histogram().Snapshot().Summary() << "\n";
    }
    // Assignment lines stream out in placement order and cover exactly the
    // vertices the stream touched — call out any the graph declared but the
    // stream never reached (isolated vertices have no placement).
    if (!from_file &&
        report.events.vertices_assigned < expected_vertices) {
      std::cerr << "note: "
                << expected_vertices - report.events.vertices_assigned
                << " of " << expected_vertices
                << " vertices never appeared in the stream (isolated?) and "
                   "have no assignment line\n";
    }

    if (args.evaluate) {
      const partition::Partitioning& p = session->partitioning();
      // Edge backends: the quality triple comes from the backend's final
      // stats — replication factor (avg replicas per vertex), edge balance
      // (max part load vs perfect spread), and the placement hash.
      if (report.Stat("edge_assignments") > 0) {
        const uint64_t edges = report.Stat("edge_assignments");
        const uint64_t seen = report.Stat("vertices_seen");
        const double rf =
            seen > 0 ? static_cast<double>(report.Stat("replica_total")) /
                           static_cast<double>(seen)
                     : 0.0;
        const double balance =
            static_cast<double>(report.Stat("max_part_edges")) *
            static_cast<double>(p.k()) / static_cast<double>(edges);
        std::cerr << "replication factor: "
                  << util::TableWriter::Fmt(rf, 3) << " over " << seen
                  << " vertices, edge balance "
                  << util::TableWriter::Fmt(balance, 3)
                  << ", edge assignment hash 0x" << std::hex
                  << report.Stat("edge_assignment_hash") << std::dec << "\n";
      }
      if (from_file) {
        // No materialised graph: replay the stream once more and count
        // edges whose endpoints were placed apart — the same edge cut,
        // computed stream-side in bounded memory. ipt needs the graph;
        // point at --graph for it.
        source->Reset();
        std::vector<stream::StreamEdge> batch(4096);
        size_t cut = 0, total = 0;
        for (;;) {
          const size_t n = source->NextBatch(batch);
          if (n == 0) break;
          total += n;
          for (size_t i = 0; i < n; ++i) {
            if (p.PartitionOf(batch[i].u) != p.PartitionOf(batch[i].v)) ++cut;
          }
        }
        std::cerr << "edge cut: " << cut << " / " << total << ", imbalance "
                  << util::TableWriter::Pct(partition::Imbalance(p))
                  << " (workload ipt needs --graph: streams carry no "
                     "adjacency)\n";
      } else {
        query::ExecutorConfig executor{.max_seeds = 4000,
                                       .max_matches_per_seed = 256};
        query::WorkloadResult wr =
            query::RunWorkload(ds.graph, p, ds.workload, executor);
        std::cerr << "weighted ipt: " << wr.weighted_ipt << " over "
                  << wr.weighted_traversals << " weighted traversals (ratio "
                  << util::TableWriter::Pct(wr.IptRatio()) << ")\n"
                  << "edge cut: " << partition::EdgeCut(ds.graph, p) << " / "
                  << ds.NumEdges() << ", imbalance "
                  << util::TableWriter::Pct(partition::Imbalance(p)) << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
