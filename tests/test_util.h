// Shared fixtures for the partitioner test suites.
//
// Before this header, every suite hand-rolled the same four steps: size an
// EngineOptions from a dataset, build a backend through the registry,
// stream the dataset through it, and compare the golden quality triple
// (assignment hash, edge-cut, imbalance). Those steps are the definition
// of "bit-identical partitioning" used by the differential suites
// (sharded_equivalence_test, concurrency_stress_test), the contract suite
// and the bench smoke baseline — so they live here, once.

#ifndef LOOM_TESTS_TEST_UTIL_H_
#define LOOM_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "partition/partitioner.h"
#include "stream/edge_stream.h"
#include "util/simd.h"

namespace loom {
namespace test_util {

/// EngineOptions sized for `ds`, with the small window the suites use to
/// force real evictions at test scale.
engine::EngineOptions OptionsFor(const datasets::Dataset& ds, uint32_t k = 8,
                                 uint64_t window_size = 128);

/// The registry BuildContext every backend construction needs.
engine::BuildContext ContextFor(const datasets::Dataset& ds);

/// Builds backend `spec` ("name" or "name:key=value,...") for `ds` through
/// the global registry. Registers a gtest failure and returns nullptr on
/// error — callers ASSERT_NE(p, nullptr).
std::unique_ptr<partition::Partitioner> MakeBackend(
    std::string_view spec, const engine::EngineOptions& options,
    const datasets::Dataset& ds);

/// Ingests the whole stream one edge at a time, then finalizes.
void RunAll(partition::Partitioner* p, const stream::EdgeStream& es);

/// The golden quality triple: what "bit-identical partitioning" means in
/// the differential suites and the bench smoke baseline.
struct Quality {
  uint64_t assignment_hash = 0;
  uint64_t edge_cut = 0;
  double imbalance = 0.0;

  friend bool operator==(const Quality&, const Quality&) = default;
};

std::ostream& operator<<(std::ostream& os, const Quality& q);

/// Measures `p`'s finished partitioning against `ds`.
Quality QualityOf(const partition::Partitioner& p, const datasets::Dataset& ds);

/// Runs `fn` once per util::simd level this CPU supports (scalar always
/// included), installing the level before and restoring the previous active
/// level after. The SIMD differential suites wrap whole backend runs in
/// this: every level must produce byte-identical partitioning.
void ForEachSimdLevel(const std::function<void(util::simd::Level)>& fn);

/// One differential leg: builds `spec`, drives `ds` end to end through
/// engine::Drive (pull path) in `batch_size` batches over a fresh lazy
/// source with the given order/seed, finalizes, and returns the quality
/// triple. Returns a default Quality (and a registered gtest failure) if
/// the spec fails to build.
Quality DriveSpec(std::string_view spec, const datasets::Dataset& ds,
                  const engine::EngineOptions& options,
                  stream::StreamOrder order, uint64_t stream_seed,
                  size_t batch_size);

}  // namespace test_util
}  // namespace loom

#endif  // LOOM_TESTS_TEST_UTIL_H_
