#include "query/workload_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "datasets/dataset_registry.h"

namespace loom {
namespace query {
namespace {

TEST(WorkloadIoTest, ParsesAllShapes) {
  std::stringstream ss(
      "# comment\n"
      "coauthor 0.4 path:Author-Paper-Author\n"
      "square 0.3 cycle:a-b-a-b\n"
      "hub 0.2 star:Center:Leaf1,Leaf2,Leaf3\n"
      "custom 0.1 edges:x,y,z:0-1;1-2;2-0\n");
  graph::LabelRegistry reg;
  Workload w = ReadWorkload(ss, &reg);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.queries()[0].name, "coauthor");
  EXPECT_EQ(w.queries()[0].pattern.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(w.queries()[0].frequency, 0.4);
  EXPECT_EQ(w.queries()[1].pattern.NumEdges(), 4u);  // 4-cycle
  EXPECT_EQ(w.queries()[2].pattern.NumEdges(), 3u);  // 3-leaf star
  EXPECT_EQ(w.queries()[3].pattern.NumEdges(), 3u);  // triangle
  EXPECT_EQ(reg.Find("Author"), 0);
}

TEST(WorkloadIoTest, RoundTripsThroughEdgesForm) {
  graph::LabelRegistry reg;
  datasets::Dataset ds = datasets::MakeFigure1Dataset();
  std::stringstream ss;
  WriteWorkload(ds.workload, ds.registry, ss);
  graph::LabelRegistry reg2;
  Workload back = ReadWorkload(ss, &reg2);
  ASSERT_EQ(back.size(), ds.workload.size());
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.queries()[i].name, ds.workload.queries()[i].name);
    EXPECT_DOUBLE_EQ(back.queries()[i].frequency,
                     ds.workload.queries()[i].frequency);
    EXPECT_EQ(back.queries()[i].pattern.NumEdges(),
              ds.workload.queries()[i].pattern.NumEdges());
    EXPECT_EQ(back.queries()[i].pattern.NumVertices(),
              ds.workload.queries()[i].pattern.NumVertices());
  }
}

TEST(WorkloadIoTest, RejectsMalformedInput) {
  graph::LabelRegistry reg;
  auto expect_throw = [&](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW(ReadWorkload(ss, &reg), std::runtime_error) << text;
  };
  expect_throw("q1 0.5\n");                        // missing shape
  expect_throw("q1 frequency path:a-b\n");         // bad frequency
  expect_throw("q1 -0.5 path:a-b\n");              // negative frequency
  expect_throw("q1 0.5 path:a\n");                 // path too short
  expect_throw("q1 0.5 cycle:a-b\n");              // cycle too short
  expect_throw("q1 0.5 blob:a-b\n");               // unknown kind
  expect_throw("q1 0.5 noshape\n");                // no colon
  expect_throw("q1 0.5 edges:a,b:0-5\n");          // endpoint out of range
  expect_throw("q1 0.5 edges:a,b:0-0\n");          // self loop
  expect_throw("q1 0.5 edges:a,b,c:0-1\n");        // disconnected (c isolated)
}

TEST(WorkloadIoTest, MissingFileThrows) {
  graph::LabelRegistry reg;
  EXPECT_THROW(ReadWorkloadFile("/nonexistent/q.lw", &reg),
               std::runtime_error);
}

TEST(WorkloadIoTest, EmptyInputGivesEmptyWorkload) {
  std::stringstream ss("# nothing here\n\n");
  graph::LabelRegistry reg;
  Workload w = ReadWorkload(ss, &reg);
  EXPECT_TRUE(w.empty());
}

}  // namespace
}  // namespace query
}  // namespace loom
