#include "signature/label_values.h"

#include <cassert>

#include "util/rng.h"

namespace loom {
namespace signature {

LabelValues::LabelValues(size_t num_labels, uint32_t p, uint64_t seed)
    : p_(p), rng_(seed ^ (static_cast<uint64_t>(p) << 32)) {
  assert(p >= 3);
  values_.reserve(num_labels);
  for (size_t i = 0; i < num_labels; ++i) {
    // r(l) uniform in [1, p).
    values_.push_back(static_cast<uint32_t>(1 + rng_.Uniform(p - 1)));
  }
}

void LabelValues::EnsureLabels(size_t num_labels) {
  if (num_labels <= values_.size()) return;
  const size_t target =
      (num_labels + kLabelChunk - 1) / kLabelChunk * kLabelChunk;
  values_.reserve(target);
  while (values_.size() < target) {
    values_.push_back(static_cast<uint32_t>(1 + rng_.Uniform(p_ - 1)));
  }
}

}  // namespace signature
}  // namespace loom
