// serve::Server acceptance: a served stream must be indistinguishable from
// an offline loom_partition run over the same edge sequence.
//
//   * One socket writer, every edge INGESTed, FINALIZE -> the quality
//     triple (assignment hash, edge cut, imbalance) is bit-identical to a
//     Session driven directly over the same vector — for "loom" AND
//     "loom-sharded:shards=3" (the concurrency in the backend and the
//     concurrency in the server compose).
//   * N concurrent writers + M concurrent GET/STATS readers: arrival order
//     is whatever the scheduler makes it, so the proof obligation shifts to
//     the ingest log — replaying the log offline must reproduce the
//     server's triple exactly.
//   * Crash analog (destruction without Shutdown — what SIGKILL leaves) +
//     --resume from the rotating checkpoint, clients re-sending from the
//     resume cursor: the finished triple again matches the uninterrupted
//     reference, including the restored cut-tracker state.
//   * Malformed and oversize lines over a real socket produce ERR replies
//     and never take down the connection, let alone the server.
//
// Everything here runs under the ThreadSanitizer ctest leg too — the
// wait-free AssignmentTable reads and the MPSC queue are exactly the kind
// of code TSan exists for.

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "engine/session.h"
#include "io/edge_stream_io.h"
#include "partition/partition_metrics.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "stream/stream_order.h"
#include "test_util.h"

namespace loom {
namespace serve {
namespace {

namespace fs = std::filesystem;

fs::path TempDir(const std::string& leaf) {
  const fs::path dir = fs::path(testing::TempDir()) / "loom_serve_test" / leaf;
  fs::create_directories(dir);
  return dir;
}

/// EdgeSource over a vector, for the offline reference runs.
class VecSource : public engine::EdgeSource {
 public:
  explicit VecSource(const std::vector<stream::StreamEdge>& edges)
      : edges_(edges) {}
  size_t NextBatch(std::span<stream::StreamEdge> out) override {
    const size_t n = std::min(out.size(), edges_.size() - pos_);
    std::copy_n(edges_.begin() + static_cast<ptrdiff_t>(pos_), n, out.begin());
    pos_ += n;
    return n;
  }
  size_t SizeHint() const override { return edges_.size(); }
  void Reset() override { pos_ = 0; }

 private:
  const std::vector<stream::StreamEdge>& edges_;
  size_t pos_ = 0;
};

struct Fixture {
  datasets::Dataset ds;
  std::vector<stream::StreamEdge> edges;
  engine::SessionConfig session_config;
};

/// musicbrainz at suite scale, streamed BFS — the sequence every leg
/// (offline reference, served, replayed, resumed) must agree on.
Fixture MakeFixture(const std::string& spec) {
  Fixture f;
  f.ds = datasets::MakeDataset(datasets::DatasetId::kMusicBrainz, 0.05);
  auto source = engine::MakeEdgeSource(
      f.ds.graph, stream::StreamOrder::kBreadthFirst, /*seed=*/0x5eed);
  std::vector<stream::StreamEdge> batch(1024);
  for (;;) {
    const size_t n = source->NextBatch(batch);
    if (n == 0) break;
    f.edges.insert(f.edges.end(), batch.begin(), batch.begin() + n);
  }
  f.session_config.spec = spec;
  f.session_config.options = test_util::OptionsFor(f.ds, /*k=*/8,
                                                   /*window_size=*/128);
  return f;
}

struct Triple {
  uint64_t hash = 0;
  uint64_t cut = 0;
  double imbalance = 0.0;
  friend bool operator==(const Triple&, const Triple&) = default;
};

std::ostream& operator<<(std::ostream& os, const Triple& t) {
  return os << "{hash=" << t.hash << " cut=" << t.cut
            << " imbalance=" << t.imbalance << "}";
}

Triple TripleOf(const partition::Partitioning& p,
                const std::vector<stream::StreamEdge>& edges,
                size_t num_vertices) {
  Triple t;
  t.hash = partition::AssignmentHash(p, num_vertices);
  for (const stream::StreamEdge& e : edges) {
    if (p.PartitionOf(e.u) != p.PartitionOf(e.v)) ++t.cut;
  }
  t.imbalance = partition::Imbalance(p);
  return t;
}

/// The offline ground truth: a plain Session driven over the vector.
Triple OfflineReference(const Fixture& f) {
  std::string error;
  auto session = engine::Session::Create(
      f.session_config, test_util::ContextFor(f.ds), &error);
  EXPECT_NE(session, nullptr) << error;
  VecSource source(f.edges);
  session->Run(source);
  return TripleOf(session->partitioning(), f.edges, f.ds.NumVertices());
}

/// Sends edges [from, to) as INGEST lines, pipelined `depth` deep.
void SendRange(Client* client, const std::vector<stream::StreamEdge>& edges,
               size_t from, size_t to, size_t depth = 256) {
  std::string error, reply;
  size_t in_flight = 0;
  for (size_t i = from; i < to; ++i) {
    Command c;
    c.type = CommandType::kIngest;
    c.edge = edges[i];
    if (in_flight >= depth) {
      ASSERT_TRUE(client->ReadReply(&reply, &error)) << error;
      ASSERT_TRUE(IsOk(reply)) << reply;
      --in_flight;
    }
    ASSERT_TRUE(client->SendLine(FormatCommand(c), &error)) << error;
    ++in_flight;
  }
  while (in_flight > 0) {
    ASSERT_TRUE(client->ReadReply(&reply, &error)) << error;
    ASSERT_TRUE(IsOk(reply)) << reply;
    --in_flight;
  }
}

class ServeServerTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeServerTest, SingleWriterBitIdenticalToOffline) {
  const Fixture f = MakeFixture(GetParam());
  const Triple reference = OfflineReference(f);
  const fs::path dir = TempDir("single_" + std::to_string(f.edges.size()));

  ServerConfig config;
  config.socket_path = (dir / "loom.sock").string();
  config.session = f.session_config;
  config.registry = &f.ds.registry;
  std::string error;
  auto server = Server::Create(config, test_util::ContextFor(f.ds), &error);
  ASSERT_NE(server, nullptr) << error;
  server->Start();

  Client client;
  ASSERT_TRUE(client.Connect(config.socket_path, &error)) << error;
  SendRange(&client, f.edges, 0, f.edges.size());
  std::string reply;
  ASSERT_TRUE(client.Roundtrip("FINALIZE", &reply, &error)) << error;
  EXPECT_TRUE(IsOk(reply)) << reply;
  ASSERT_TRUE(client.Roundtrip("SNAPSHOT-QUALITY", &reply, &error)) << error;
  EXPECT_TRUE(IsOk(reply)) << reply;
  ASSERT_TRUE(client.Roundtrip("STATS", &reply, &error)) << error;
  EXPECT_TRUE(IsOk(reply)) << reply;
  client.Close();
  server->Shutdown();

  const Triple served =
      TripleOf(server->session().partitioning(), f.edges, f.ds.NumVertices());
  EXPECT_EQ(served, reference);
  // The served cut was maintained stream-side by the tracker — it must
  // agree with the replay-counted cut.
  EXPECT_EQ(server->tracker().cut(), reference.cut);
  EXPECT_EQ(server->edges_ingested(), f.edges.size());

  // The wait-free table is the GET fast path: it must agree with the
  // session's partitioning everywhere.
  const partition::Partitioning& p = server->session().partitioning();
  for (size_t v = 0; v < f.ds.NumVertices(); v += 7) {
    EXPECT_EQ(server->table().Get(static_cast<graph::VertexId>(v)),
              p.PartitionOf(static_cast<graph::VertexId>(v)))
        << "vertex " << v;
  }
}

TEST_P(ServeServerTest, ConcurrentWritersMatchIngestLogReplay) {
  const Fixture f = MakeFixture(GetParam());
  const fs::path dir = TempDir("writers_" + GetParam().substr(0, 4));
  const std::string log_path = (dir / "ingest.les").string();

  ServerConfig config;
  config.socket_path = (dir / "loom.sock").string();
  config.session = f.session_config;
  config.ingest_log_path = log_path;
  config.registry = &f.ds.registry;
  // Small queue so writers actually hit backpressure.
  config.queue_capacity = 1024;
  std::string error;
  auto server = Server::Create(config, test_util::ContextFor(f.ds), &error);
  ASSERT_NE(server, nullptr) << error;
  server->Start();

  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 2;
  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Client client;
      std::string err;
      ASSERT_TRUE(client.Connect(config.socket_path, &err)) << err;
      // Writer w sends the slice [w*stride, (w+1)*stride).
      const size_t stride = (f.edges.size() + kWriters - 1) / kWriters;
      const size_t from = w * stride;
      const size_t to = std::min(f.edges.size(), from + stride);
      SendRange(&client, f.edges, from, to);
    });
  }
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Client client;
      std::string err, reply;
      ASSERT_TRUE(client.Connect(config.socket_path, &err)) << err;
      uint64_t probes = 0;
      while (!writers_done.load(std::memory_order_acquire)) {
        const graph::VertexId v =
            static_cast<graph::VertexId>((probes * 37 + r) %
                                         std::max<size_t>(f.ds.NumVertices(),
                                                          1));
        ASSERT_TRUE(client.Roundtrip("GET " + std::to_string(v), &reply,
                                     &err))
            << err;
        EXPECT_TRUE(IsOk(reply)) << reply;
        ASSERT_TRUE(client.Roundtrip("STATS", &reply, &err)) << err;
        EXPECT_TRUE(IsOk(reply)) << reply;
        ++probes;
      }
    });
  }
  for (size_t w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  for (size_t r = kWriters; r < threads.size(); ++r) threads[r].join();

  Client ctl;
  std::string reply;
  ASSERT_TRUE(ctl.Connect(config.socket_path, &error)) << error;
  ASSERT_TRUE(ctl.Roundtrip("FINALIZE", &reply, &error)) << error;
  EXPECT_TRUE(IsOk(reply)) << reply;
  ctl.Close();
  server->Shutdown();
  ASSERT_EQ(server->edges_ingested(), f.edges.size());

  // Decision order was scheduler-dependent — but the ingest log recorded
  // it. An offline session over the log must land on the same triple.
  io::FileEdgeSource log(log_path);
  std::vector<stream::StreamEdge> logged;
  std::vector<stream::StreamEdge> batch(1024);
  for (;;) {
    const size_t n = log.NextBatch(batch);
    if (n == 0) break;
    logged.insert(logged.end(), batch.begin(), batch.begin() + n);
  }
  ASSERT_EQ(logged.size(), f.edges.size());

  auto offline = engine::Session::Create(f.session_config,
                                         test_util::ContextFor(f.ds), &error);
  ASSERT_NE(offline, nullptr) << error;
  VecSource replay(logged);
  offline->Run(replay);
  const Triple replayed =
      TripleOf(offline->partitioning(), logged, f.ds.NumVertices());
  const Triple served = TripleOf(server->session().partitioning(), logged,
                                 f.ds.NumVertices());
  EXPECT_EQ(served, replayed);
  EXPECT_EQ(server->tracker().cut(), replayed.cut);
}

TEST_P(ServeServerTest, CrashAnalogThenResumeRecoversBitIdentically) {
  const Fixture f = MakeFixture(GetParam());
  const Triple reference = OfflineReference(f);
  const fs::path dir = TempDir("crash_" + GetParam().substr(0, 4));
  const std::string ck_path = (dir / "serve.loomck").string();

  const size_t cut_at = f.edges.size() * 3 / 5;
  const size_t lose_to = f.edges.size() * 4 / 5;
  {
    ServerConfig config;
    config.socket_path = (dir / "a.sock").string();
    config.session = f.session_config;
    config.checkpoint_path = ck_path;
    config.registry = &f.ds.registry;
    std::string error;
    auto server = Server::Create(config, test_util::ContextFor(f.ds), &error);
    ASSERT_NE(server, nullptr) << error;
    server->Start();
    Client client;
    ASSERT_TRUE(client.Connect(config.socket_path, &error)) << error;
    // A checkpointed prefix, then more edges the crash will throw away.
    SendRange(&client, f.edges, 0, cut_at);
    std::string reply;
    ASSERT_TRUE(client.Roundtrip("CHECKPOINT", &reply, &error)) << error;
    ASSERT_TRUE(IsOk(reply)) << reply;
    SendRange(&client, f.edges, cut_at, lose_to);
    client.Close();
    // Destruction WITHOUT Shutdown: the in-process SIGKILL. Everything
    // after the checkpoint is gone.
  }

  ServerConfig config;
  config.socket_path = (dir / "b.sock").string();
  config.session = f.session_config;
  config.checkpoint_path = ck_path;
  config.resume_path = ck_path;
  config.registry = &f.ds.registry;
  std::string error;
  auto server = Server::Create(config, test_util::ContextFor(f.ds), &error);
  ASSERT_NE(server, nullptr) << error;
  // The resume cursor is the client's re-send position — exactly what
  // STATS edges= would tell a remote writer.
  const uint64_t cursor = server->edges_ingested();
  ASSERT_EQ(cursor, cut_at);
  server->Start();

  Client client;
  ASSERT_TRUE(client.Connect(config.socket_path, &error)) << error;
  SendRange(&client, f.edges, static_cast<size_t>(cursor), f.edges.size());
  std::string reply;
  ASSERT_TRUE(client.Roundtrip("FINALIZE", &reply, &error)) << error;
  EXPECT_TRUE(IsOk(reply)) << reply;
  client.Close();
  server->Shutdown();

  const Triple resumed =
      TripleOf(server->session().partitioning(), f.edges, f.ds.NumVertices());
  EXPECT_EQ(resumed, reference);
  // The cut tracker's parked edges crossed the crash inside the LOOMCK —
  // the stream-side count must still agree with the replayed one.
  EXPECT_EQ(server->tracker().cut(), reference.cut);
}

INSTANTIATE_TEST_SUITE_P(Backends, ServeServerTest,
                         ::testing::Values("loom", "loom-sharded:shards=3"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

TEST(ServeServerIdempotencyTest, SeqNumberedResendsAreDroppedNotReapplied) {
  // The at-least-once hole: a writer that times out and re-sends (the
  // documented recovery protocol) must not double-ingest. With the optional
  // INGEST seq field the server drops exact re-sends ("OK dup"), so the
  // finished triple is STILL bit-identical to the offline reference even
  // though a third of the stream was sent twice.
  const Fixture f = MakeFixture("loom");
  const Triple reference = OfflineReference(f);
  const fs::path dir = TempDir("idempotent");

  ServerConfig config;
  config.socket_path = (dir / "loom.sock").string();
  config.session = f.session_config;
  config.registry = &f.ds.registry;
  std::string error;
  auto server = Server::Create(config, test_util::ContextFor(f.ds), &error);
  ASSERT_NE(server, nullptr) << error;
  server->Start();

  Client client;
  ASSERT_TRUE(client.Connect(config.socket_path, &error)) << error;
  auto send_seq = [&](size_t i) -> std::string {
    Command c;
    c.type = CommandType::kIngest;
    c.edge = f.edges[i];
    c.has_seq = true;
    c.seq = i;
    std::string reply, err;
    EXPECT_TRUE(client.Roundtrip(FormatCommand(c), &reply, &err)) << err;
    return reply;
  };

  const size_t resend_from = f.edges.size() / 3;
  const size_t resend_to = 2 * f.edges.size() / 3;
  for (size_t i = 0; i < resend_to; ++i) {
    const std::string reply = send_seq(i);
    EXPECT_TRUE(IsOk(reply)) << reply;
  }
  // The writer "crashes" and replays from an old cursor: every re-send is
  // acknowledged (so a dumb retry loop keeps walking) but dropped.
  for (size_t i = resend_from; i < resend_to; ++i) {
    const std::string reply = send_seq(i);
    EXPECT_TRUE(IsOk(reply)) << reply;
    EXPECT_NE(reply.find("dup"), std::string::npos) << reply;
  }
  std::string reply;
  ASSERT_TRUE(client.Roundtrip("STATS", &reply, &error)) << error;
  EXPECT_NE(reply.find("edges=" + std::to_string(resend_to)),
            std::string::npos)
      << reply;

  // Jumping AHEAD of the cursor is a hole in the stream, not a re-send:
  // rejected, and the error names the seq to re-send from.
  {
    Command c;
    c.type = CommandType::kIngest;
    c.edge = f.edges[resend_to];
    c.has_seq = true;
    c.seq = resend_to + 7;
    ASSERT_TRUE(client.Roundtrip(FormatCommand(c), &reply, &error)) << error;
    EXPECT_FALSE(IsOk(reply)) << reply;
    EXPECT_NE(reply.find("expected " + std::to_string(resend_to)),
              std::string::npos)
        << reply;
  }

  // Seq-less INGEST still works mid-stream (the tail/legacy path).
  for (size_t i = resend_to; i < f.edges.size(); ++i) {
    Command c;
    c.type = CommandType::kIngest;
    c.edge = f.edges[i];
    ASSERT_TRUE(client.Roundtrip(FormatCommand(c), &reply, &error)) << error;
    EXPECT_TRUE(IsOk(reply)) << reply;
  }
  ASSERT_TRUE(client.Roundtrip("FINALIZE", &reply, &error)) << error;
  EXPECT_TRUE(IsOk(reply)) << reply;
  client.Close();
  server->Shutdown();

  EXPECT_EQ(server->edges_ingested(), f.edges.size());
  const Triple served =
      TripleOf(server->session().partitioning(), f.edges, f.ds.NumVertices());
  EXPECT_EQ(served, reference);
}

TEST(ServeServerRobustnessTest, MalformedLinesGetErrRepliesNotDisconnects) {
  const Fixture f = MakeFixture("loom");
  const fs::path dir = TempDir("malformed");
  ServerConfig config;
  config.socket_path = (dir / "loom.sock").string();
  config.session = f.session_config;
  config.registry = &f.ds.registry;
  std::string error;
  auto server = Server::Create(config, test_util::ContextFor(f.ds), &error);
  ASSERT_NE(server, nullptr) << error;
  server->Start();

  Client client;
  ASSERT_TRUE(client.Connect(config.socket_path, &error)) << error;
  std::string reply;
  const char* kGarbage[] = {
      "INGEST 1 1 0 0",       // self-loop
      "INGEST a b c d",       // non-numeric
      "INGEST 1 2 0",         // wrong arity
      "FROBNICATE",           // unknown verb
      "",                     // empty line
      "GET 99999999999999",   // overflows VertexId
      "INGEST 999999999 1 0 0",  // past expected_vertices
      "INGEST 1 2 99 0",      // label outside the table
  };
  for (const char* line : kGarbage) {
    ASSERT_TRUE(client.Roundtrip(line, &reply, &error)) << error;
    EXPECT_FALSE(IsOk(reply)) << line << " -> " << reply;
  }
  // An oversize line (no newline until way past the cap) gets one ERR.
  ASSERT_TRUE(client.Roundtrip(std::string(2 * kMaxLineBytes, 'x'), &reply,
                               &error))
      << error;
  EXPECT_FALSE(IsOk(reply)) << reply;
  // Nothing above reached the engine...
  ASSERT_TRUE(client.Roundtrip("STATS", &reply, &error)) << error;
  EXPECT_TRUE(IsOk(reply)) << reply;
  EXPECT_NE(reply.find("edges=0"), std::string::npos) << reply;
  // ...and the same connection still ingests fine.
  ASSERT_TRUE(
      client.Roundtrip(FormatCommand(Command{
                           .type = CommandType::kIngest,
                           .edge = f.edges.front(),
                       }),
                       &reply, &error))
      << error;
  EXPECT_TRUE(IsOk(reply)) << reply;
  client.Close();
  server->Shutdown();
  EXPECT_EQ(server->edges_ingested(), 1u);
}

TEST(ServeServerRobustnessTest, ControlCommandsWorkWithoutSocket) {
  // HandleLine is the whole protocol surface — a tail-only (or embedded)
  // server answers it without any listener running.
  const Fixture f = MakeFixture("loom");
  ServerConfig config;
  config.session = f.session_config;
  config.registry = &f.ds.registry;
  std::string error;
  auto server = Server::Create(config, test_util::ContextFor(f.ds), &error);
  ASSERT_NE(server, nullptr) << error;
  EXPECT_TRUE(IsOk(server->HandleLine("STATS")));
  EXPECT_TRUE(IsOk(server->HandleLine("SNAPSHOT-QUALITY")));
  EXPECT_FALSE(IsOk(server->HandleLine("CHECKPOINT")));  // not configured
  EXPECT_TRUE(IsOk(server->HandleLine("GET 0")));
  EXPECT_FALSE(IsOk(server->HandleLine("GET")));
}

}  // namespace
}  // namespace serve
}  // namespace loom
