// Tests for workload drift support (paper Sec. 6): TPSTry++ support decay
// and LoomPartitioner::UpdateWorkload.

#include <gtest/gtest.h>

#include "core/loom_partitioner.h"
#include "datasets/dataset_registry.h"
#include "datasets/workloads.h"
#include "partition/partition_metrics.h"
#include "query/workload_runner.h"
#include "stream/stream_order.h"

namespace loom {
namespace core {
namespace {

TEST(DecaySupportsTest, ScalesSupportsAndTotalUniformly) {
  graph::LabelRegistry reg;
  query::Workload w = datasets::Figure1Workload(&reg);
  signature::LabelValues values(reg.size(), 251, 1);
  signature::SignatureCalculator calc(&values);
  tpstry::Tpstry trie(&calc, 0.4);
  for (const auto& q : w.queries()) trie.AddQuery(q.pattern, q.frequency);

  const auto motifs_before = trie.MotifIds();
  std::vector<double> supports_before;
  for (uint32_t id = 1; id < trie.NumNodes(); ++id) {
    supports_before.push_back(trie.NormalizedSupport(id));
  }

  trie.DecaySupports(0.5);

  // Uniform decay leaves *normalised* supports (and hence motifs) unchanged.
  EXPECT_EQ(trie.MotifIds(), motifs_before);
  for (uint32_t id = 1; id < trie.NumNodes(); ++id) {
    EXPECT_NEAR(trie.NormalizedSupport(id), supports_before[id - 1], 1e-9);
  }
  EXPECT_NEAR(trie.total_frequency(), 0.5, 1e-12);
}

TEST(DecaySupportsTest, DecayPlusAddShiftsMotifs) {
  graph::LabelRegistry reg;
  const graph::LabelId a = reg.Intern("a");
  const graph::LabelId b = reg.Intern("b");
  const graph::LabelId c = reg.Intern("c");
  signature::LabelValues values(reg.size(), 251, 1);
  signature::SignatureCalculator calc(&values);
  tpstry::Tpstry trie(&calc, 0.4);

  trie.AddQuery(graph::PatternGraph::Path({a, b}), 1.0);
  EXPECT_NE(trie.FindSingleEdgeMotif(calc.SingleEdgeSignature(a, b)), nullptr);
  EXPECT_EQ(trie.FindSingleEdgeMotif(calc.SingleEdgeSignature(b, c)), nullptr);

  // Decay a-b to 20% of the mass; add b-c with 80%.
  trie.DecaySupports(0.2);
  trie.AddQuery(graph::PatternGraph::Path({b, c}), 0.8);

  EXPECT_EQ(trie.FindSingleEdgeMotif(calc.SingleEdgeSignature(a, b)), nullptr)
      << "a-b demoted (20% < 40%)";
  EXPECT_NE(trie.FindSingleEdgeMotif(calc.SingleEdgeSignature(b, c)), nullptr)
      << "b-c promoted (80% >= 40%)";
}

TEST(UpdateWorkloadTest, ChangesAdmissionMaskMidStream) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);

  // Initial workload: derivation only -> Agent label not motif-relevant.
  graph::LabelRegistry& reg = ds.registry;
  query::Workload initial;
  initial.Add("derivation",
              graph::PatternGraph::Path({reg.Find("Entity"),
                                         reg.Find("Activity"),
                                         reg.Find("Entity")}),
              1.0);
  query::Workload shifted;
  shifted.Add("attribution",
              graph::PatternGraph::Path({reg.Find("Entity"),
                                         reg.Find("Activity"),
                                         reg.Find("Agent")}),
              1.0);

  core::LoomOptions options;
  options.base.k = 4;
  options.base.expected_vertices = ds.NumVertices();
  options.base.expected_edges = ds.NumEdges();
  options.window_size = 256;

  LoomPartitioner loom(options, initial, reg.size());
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const size_t half = es.size() / 2;
  size_t i = 0;
  for (const auto& e : es) {
    if (i++ == half) loom.UpdateWorkload(shifted, /*decay=*/0.1);
    loom.Ingest(e);
  }
  loom.Finalize();
  EXPECT_TRUE(partition::FullyAssigned(ds.graph, loom.partitioning()));

  // After the shift the Activity-Agent edge is a motif; some of the second
  // half's agent edges must have been admitted rather than bypassed, i.e.
  // admissions exceed the count of Entity-Activity edges alone.
  EXPECT_GT(loom.matcher_stats().edges_admitted, 0u);
  EXPECT_GT(loom.trie().NumNodes(), 3u);
}

TEST(UpdateWorkloadTest, FullReplacementWithZeroDecay) {
  auto ds = datasets::MakeFigure1Dataset();
  core::LoomOptions options;
  options.base.k = 2;
  options.base.expected_vertices = ds.NumVertices();
  options.base.expected_edges = ds.NumEdges();
  LoomPartitioner loom(options, ds.workload, ds.registry.size());
  const size_t motifs_before = loom.trie().MotifIds().size();

  // Replace with a workload containing only q3 (the c-d path family).
  query::Workload replacement;
  replacement.Add("q3", ds.workload.queries()[2].pattern, 1.0);
  loom.UpdateWorkload(replacement, /*decay=*/0.0);

  // Every sub-graph of q3 is now a 100%-support motif; the old a-b-a-b
  // square family is demoted to ~0.
  EXPECT_NE(loom.trie().MotifIds().size(), motifs_before);
  EXPECT_EQ(loom.trie().MaxMotifEdges(), 3u);  // the full a-b-c-d path
}

TEST(UpdateWorkloadTest, StillBeatsStaleOnShiftedWorkload) {
  // End-to-end sanity of the Sec. 6 story (mirrors the ablation bench at
  // test scale): adapting at the shift must not be worse than staying stale.
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.35);
  graph::LabelRegistry& reg = ds.registry;
  query::Workload initial;  // attribution-dominant, like the ablation bench
  initial.Add("attribution",
              graph::PatternGraph::Path({reg.Find("Entity"),
                                         reg.Find("Activity"),
                                         reg.Find("Agent")}),
              0.7);
  initial.Add("derivation",
              graph::PatternGraph::Path({reg.Find("Entity"),
                                         reg.Find("Activity"),
                                         reg.Find("Entity")}),
              0.3);
  const query::Workload& final_w = ds.workload;

  auto run = [&](bool adapt) {
    core::LoomOptions options;
    options.base.k = 8;
    options.base.expected_vertices = ds.NumVertices();
    options.base.expected_edges = ds.NumEdges();
    options.window_size = 1000;
    LoomPartitioner loom(options, initial, reg.size());
    auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
    const size_t half = es.size() / 2;
    size_t i = 0;
    for (const auto& e : es) {
      if (i++ == half && adapt) loom.UpdateWorkload(final_w, 0.2);
      loom.Ingest(e);
    }
    loom.Finalize();
    query::ExecutorConfig ex;
    ex.max_seeds = 1000;
    return query::RunWorkload(ds.graph, loom.partitioning(), final_w, ex)
        .weighted_ipt;
  };
  EXPECT_LT(run(/*adapt=*/true), run(/*adapt=*/false));
}

}  // namespace
}  // namespace core
}  // namespace loom
