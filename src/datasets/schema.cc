#include "datasets/schema.h"

// Currently header-only types; this TU anchors the module in the archive.

namespace loom {
namespace datasets {}  // namespace datasets
}  // namespace loom
