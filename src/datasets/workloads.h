// Canonical query workloads per dataset (Sec. 5.1.2, Fig. 6).
//
// The paper defines "common-sense queries which focus on discovering
// implicit relationships", e.g. potential collaboration between authors or
// artists, and uses LUBM's own query patterns for LUBM. Each builder below
// interns labels against the dataset's registry so the patterns are
// guaranteed to reference real edge types of the generated graphs.

#ifndef LOOM_DATASETS_WORKLOADS_H_
#define LOOM_DATASETS_WORKLOADS_H_

#include "graph/label_registry.h"
#include "query/query.h"

namespace loom {
namespace datasets {

/// DBLP: co-authorship, citation chains, venue exploration.
query::Workload DblpWorkload(graph::LabelRegistry* registry);

/// ProvGen: PROV derivation and attribution chains (mirrors the common PROV
/// queries of Dey et al. [5]).
query::Workload ProvGenWorkload(graph::LabelRegistry* registry);

/// MusicBrainz: artist collaboration, label-mates, genre affinity.
query::Workload MusicBrainzWorkload(graph::LabelRegistry* registry);

/// LUBM: advisor / coursework / co-authorship patterns from the benchmark's
/// query mix.
query::Workload LubmWorkload(graph::LabelRegistry* registry);

/// The running example of the paper's Fig. 1: labels a,b,c,d with
/// Q = {q1: a-b square 30%, q2: a-b-c path 60%, q3: a-b-c-d path 10%}.
query::Workload Figure1Workload(graph::LabelRegistry* registry);

}  // namespace datasets
}  // namespace loom

#endif  // LOOM_DATASETS_WORKLOADS_H_
