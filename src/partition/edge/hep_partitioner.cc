#include "partition/edge/hep_partitioner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace loom {
namespace partition {
namespace edge {

namespace {

/// Ceiling of the saturating neighborhood term n/(n+1), scaled below 1.0 so
/// the term can NEVER outbid a real endpoint replica (worth 1..2): pulling
/// an edge into a part that merely holds its neighbors — but neither
/// endpoint — would mint two fresh replicas on the spot. Neighbors only
/// steer between parts the endpoint-replica score leaves tied.
constexpr double kNeighborWeight = 0.9;

}  // namespace

HepPartitioner::HepPartitioner(const PartitionerConfig& config,
                               double threshold_factor, double lambda,
                               double epsilon)
    : EdgePartitioner(config),
      threshold_factor_(threshold_factor),
      lambda_(lambda),
      epsilon_(epsilon),
      capacity_factor_(config.max_imbalance),
      nbr_scratch_(config.k, 0) {
  // Same non-finite discipline as HdrfPartitioner: NaN fails every ordered
  // comparison, so range checks alone would accept it and silently skew
  // every placement.
  if (!std::isfinite(threshold_factor_) || threshold_factor_ <= 0.0) {
    throw std::invalid_argument("hep: threshold_factor must be finite and > 0");
  }
  if (!std::isfinite(lambda_) || lambda_ < 0.0) {
    throw std::invalid_argument("hep: lambda must be finite and >= 0");
  }
  if (!std::isfinite(epsilon_) || epsilon_ <= 0.0) {
    throw std::invalid_argument("hep: epsilon must be finite and > 0");
  }
  core_adj_.reserve(config.expected_vertices);
}

void HepPartitioner::MaybePromote(graph::VertexId v, double threshold) {
  if (high_degree_.Test(v)) return;
  if (static_cast<double>(PartialDegree(v)) <= threshold) return;
  high_degree_.Set(v);
  // Free (not just clear) the promoted vertex's list: this release is what
  // bounds core memory by n x threshold on unbounded streams.
  if (v < core_adj_.size()) {
    std::vector<graph::VertexId>().swap(core_adj_[v]);
  }
}

void HepPartitioner::AppendCoreAdjacency(graph::VertexId v,
                                         graph::VertexId n) {
  if (v >= core_adj_.size()) core_adj_.resize(static_cast<size_t>(v) + 1);
  core_adj_[v].push_back(n);
}

graph::PartitionId HepPartitioner::ExpandCore(const stream::StreamEdge& e,
                                              double capacity) {
  const double theta_u = PartialDegree(e.u);
  const double theta_v = PartialDegree(e.v);
  const double delta_u = theta_u / (theta_u + theta_v);
  const double delta_v = 1.0 - delta_u;

  // Neighborhood expansion: count, per part, the endpoints' in-memory
  // neighbors already replicated there. Core degrees are <= the promotion
  // threshold, so this scan is O(threshold x k), never a hub scan.
  std::fill(nbr_scratch_.begin(), nbr_scratch_.end(), 0);
  auto tally = [&](graph::VertexId v) {
    if (v >= core_adj_.size()) return;
    for (const graph::VertexId n : core_adj_[v]) {
      for (graph::PartitionId p = 0; p < k(); ++p) {
        if (IsReplicaOf(n, p)) ++nbr_scratch_[p];
      }
    }
  };
  tally(e.u);
  if (e.v != e.u) tally(e.v);

  const std::vector<uint64_t>& load = loads();
  graph::PartitionId best = 0;
  double best_score = -1.0;
  bool found = false;
  for (graph::PartitionId p = 0; p < k(); ++p) {
    if (static_cast<double>(load[p]) + 1.0 > capacity) continue;
    double score = 0.0;
    if (IsReplicaOf(e.u, p)) score += 1.0 + (1.0 - delta_u);
    if (e.v != e.u && IsReplicaOf(e.v, p)) score += 1.0 + (1.0 - delta_v);
    // Saturating: more neighbors keep helping, but the whole term stays
    // under kNeighborWeight (< 1), strictly dominated by any endpoint term.
    const double n = static_cast<double>(nbr_scratch_[p]);
    score += kNeighborWeight * n / (n + 1.0);
    // Pinned tie-break, same as HDRF: strictly-greater score wins, equal
    // score -> smaller load, equal load -> lower id.
    if (!found || score > best_score ||
        (score == best_score && load[p] < load[best])) {
      best = p;
      best_score = score;
      found = true;
    }
  }
  assert(found);  // the min-loaded part always fits under the capacity
  return best;
}

graph::PartitionId HepPartitioner::PlaceEdge(const stream::StreamEdge& e) {
  // First-touch detection: Ingest already bumped partial degrees, so a
  // degree of exactly 1 marks a vertex this stream never produced before
  // (a self-loop bumps its single slot once, so the same test holds).
  if (PartialDegree(e.u) == 1) ++touched_;
  if (e.v != e.u && PartialDegree(e.v) == 1) ++touched_;

  // The online split point: threshold_factor x the running mean partial
  // degree (2·edges / distinct vertices, this edge included). Promotion is
  // monotone, so a later-shrinking mean never demotes anyone — that keeps
  // placements a pure function of the edge sequence.
  const double mean = 2.0 * static_cast<double>(EdgesAssigned() + 1) /
                      static_cast<double>(touched_);
  const double threshold = threshold_factor_ * mean;
  MaybePromote(e.u, threshold);
  if (e.v != e.u) MaybePromote(e.v, threshold);

  const bool u_high = high_degree_.Test(e.u);
  const bool v_high = high_degree_.Test(e.v);
  // Hard edge-balance cap: capacity_factor x perfect share, plus one edge
  // of slack so the min-loaded part qualifies even in the startup regime
  // (min_load <= edges/k, so min_load + 1 <= capacity always holds).
  const double capacity =
      capacity_factor_ * (static_cast<double>(EdgesAssigned()) + 1.0) / k() +
      1.0;

  graph::PartitionId p;
  if (u_high || v_high) {
    p = HdrfGreedyPick(e, lambda_, epsilon_, capacity);
    ++fallback_edges_;
  } else {
    p = ExpandCore(e, capacity);
    ++core_edges_;
  }

  // Record the edge in the core adjacency AFTER scoring (an edge must not
  // see itself as its own neighbor); promoted endpoints carry no list.
  if (!u_high) AppendCoreAdjacency(e.u, e.v);
  if (!v_high && e.v != e.u) AppendCoreAdjacency(e.v, e.u);
  return p;
}

void HepPartitioner::FillFinalStats(engine::FinalStatsEvent* stats) const {
  EdgePartitioner::FillFinalStats(stats);
  stats->counters.emplace_back("hep_high_degree_vertices",
                               high_degree_.Count());
  stats->counters.emplace_back("hep_core_edges", core_edges_);
  stats->counters.emplace_back("hep_fallback_edges", fallback_edges_);
}

void HepPartitioner::SaveExtra(io::CheckpointWriter* w) const {
  w->F64(threshold_factor_);
  w->F64(lambda_);
  w->F64(epsilon_);
  w->U64(touched_);
  w->U64(core_edges_);
  w->U64(fallback_edges_);
  w->PodVec(high_degree_.words());
  // Core adjacency, flattened PodVec-style: per-slot counts, then the
  // concatenated neighbor ids.
  std::vector<uint64_t> counts(core_adj_.size());
  size_t total = 0;
  for (size_t v = 0; v < core_adj_.size(); ++v) {
    counts[v] = core_adj_[v].size();
    total += core_adj_[v].size();
  }
  std::vector<graph::VertexId> flat;
  flat.reserve(total);
  for (const std::vector<graph::VertexId>& adj : core_adj_) {
    flat.insert(flat.end(), adj.begin(), adj.end());
  }
  w->PodVec(counts);
  w->PodVec(flat);
}

bool HepPartitioner::RestoreExtra(io::CheckpointReader* r,
                                  std::string* error) {
  // Bit-exact knob fingerprints, same defence in depth as HDRF's lambda
  // check: a drifted threshold would silently change every post-resume
  // promotion and placement.
  const double saved_tf = r->F64();
  const double saved_lambda = r->F64();
  const double saved_epsilon = r->F64();
  if (saved_tf != threshold_factor_ || saved_lambda != lambda_ ||
      saved_epsilon != epsilon_) {
    *error = "hep parameter mismatch: checkpoint has threshold_factor=" +
             std::to_string(saved_tf) + " lambda=" +
             std::to_string(saved_lambda) + " epsilon=" +
             std::to_string(saved_epsilon) +
             ", this instance has threshold_factor=" +
             std::to_string(threshold_factor_) + " lambda=" +
             std::to_string(lambda_) + " epsilon=" + std::to_string(epsilon_);
    return false;
  }
  touched_ = r->U64();
  core_edges_ = r->U64();
  fallback_edges_ = r->U64();
  if (core_edges_ + fallback_edges_ != EdgesAssigned()) {
    *error = "hep counter desync: core_edges=" + std::to_string(core_edges_) +
             " + fallback_edges=" + std::to_string(fallback_edges_) +
             " != edges_assigned=" + std::to_string(EdgesAssigned());
    return false;
  }
  std::vector<uint64_t> words;
  r->PodVec(&words);
  high_degree_.SetWords(std::move(words));
  std::vector<uint64_t> counts;
  std::vector<graph::VertexId> flat;
  r->PodVec(&counts);
  r->PodVec(&flat);
  const uint64_t total =
      std::accumulate(counts.begin(), counts.end(), uint64_t{0});
  if (total != flat.size()) {
    *error = "hep core adjacency desync: slot counts sum to " +
             std::to_string(total) + " but " + std::to_string(flat.size()) +
             " neighbor ids are stored";
    return false;
  }
  core_adj_.assign(counts.size(), {});
  size_t offset = 0;
  for (size_t v = 0; v < counts.size(); ++v) {
    const size_t n = static_cast<size_t>(counts[v]);
    core_adj_[v].assign(flat.begin() + offset, flat.begin() + offset + n);
    offset += n;
  }
  return true;
}

}  // namespace edge
}  // namespace partition
}  // namespace loom
