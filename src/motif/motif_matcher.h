// Streaming motif matching (Sec. 3, Alg. 2).
//
// For each edge admitted to the window the matcher discovers every new
// motif-matching sub-graph the edge creates:
//   1. the single-edge match itself,
//   2. extensions: existing matches at either endpoint grown by the new edge
//      (accepted when the factor-delta corresponds to a motif child in the
//      TPSTry++), and
//   3. joins: pairs of existing matches at the two endpoints merged by
//      recursively absorbing the smaller match's edges into the larger
//      (Alg. 2 lines 11-18).
// Matching is purely signature-based: isomorphic sub-graphs always match
// (no false negatives); rare non-isomorphic collisions are tolerated, as the
// paper argues, because a false positive merely co-locates a sub-graph that
// did not need it.

#ifndef LOOM_MOTIF_MOTIF_MATCHER_H_
#define LOOM_MOTIF_MOTIF_MATCHER_H_

#include <cstdint>

#include "motif/match_list.h"
#include "signature/signature_calculator.h"
#include "stream/sliding_window.h"
#include "stream/stream_edge.h"
#include "tpstry/tpstry.h"

namespace loom {
namespace motif {

/// Tunables bounding worst-case work per edge.
struct MatcherConfig {
  /// Cap on live matches considered per endpoint when extending/joining.
  /// Generous by default; prevents pathological quadratic blowups on hub
  /// vertices in adversarial streams.
  size_t max_matches_per_vertex = 64;
};

/// Running counters for reporting and tests.
struct MatcherStats {
  uint64_t edges_admitted = 0;
  uint64_t single_edge_matches = 0;
  uint64_t extension_matches = 0;
  uint64_t join_matches = 0;
  uint64_t join_attempts = 0;
};

class MotifMatcher {
 public:
  /// `trie` and `calc` must outlive the matcher.
  MotifMatcher(const tpstry::Tpstry* trie,
               const signature::SignatureCalculator* calc,
               MatcherConfig config = {});

  /// The admission test (Sec. 3): the single-edge motif `e` matches, or
  /// nullptr if none — in which case `e` can never participate in any motif
  /// match and should be assigned immediately without entering the window.
  const tpstry::TpsNode* SingleEdgeMotif(const stream::StreamEdge& e) const;

  /// Processes an edge that has just been pushed into `window` (it must
  /// match a single-edge motif). Registers every newly formed match in `ml`.
  void OnEdgeAdded(const stream::StreamEdge& e,
                   const stream::SlidingWindow& window, MatchList* ml);

  const MatcherStats& stats() const { return stats_; }

 private:
  /// Degree of `v` inside the sub-graph formed by `edges` (window lookups).
  uint32_t DegreeWithin(const std::vector<graph::EdgeId>& edges,
                        graph::VertexId v,
                        const stream::SlidingWindow& window) const;

  /// Attempts to extend match `m` by edge `e`; on success builds the grown
  /// match and registers it. Returns the new match or nullptr.
  MatchPtr TryExtend(const MatchPtr& m, const stream::StreamEdge& e,
                     const stream::SlidingWindow& window, MatchList* ml);

  /// Attempts to absorb all of `smaller`'s edges into `base` (Alg. 2 lines
  /// 11-18), registering the joined match on success.
  void TryJoin(const MatchPtr& base, const MatchPtr& smaller,
               const stream::SlidingWindow& window, MatchList* ml);

  /// Recursive work-horse of TryJoin: grows (edges, node) by any absorbable
  /// edge from `remaining`; succeeds when `remaining` empties.
  bool JoinRecurse(std::vector<graph::EdgeId>& edges, uint32_t node_id,
                   std::vector<graph::EdgeId>& remaining,
                   const stream::SlidingWindow& window, MatchList* ml);

  const tpstry::Tpstry* trie_;
  const signature::SignatureCalculator* calc_;
  MatcherConfig config_;
  MatcherStats stats_;
};

}  // namespace motif
}  // namespace loom

#endif  // LOOM_MOTIF_MOTIF_MATCHER_H_
