// A motif-matching sub-graph inside the sliding window (Sec. 3).
//
// The paper's matchList entries are pairs ⟨Ei, mi⟩: a set of window edges Ei
// whose induced sub-graph has the same signature as motif mi. We add the
// (derivable) vertex set because the allocator's bid function (Eq. 1) scores
// matches by vertex overlap with partitions, and a per-vertex degree array
// (parallel to the sorted vertex set) so the matcher's factor-delta
// computation reads degrees in O(log |V|) instead of rescanning every match
// edge against the window on each extend/join attempt.
//
// Records live in a MatchPool (match_pool.h) and are referenced by 32-bit
// generational MatchHandles; liveness is the pool's, not a flag here.

#ifndef LOOM_MOTIF_MATCH_H_
#define LOOM_MOTIF_MATCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace loom {
namespace motif {

/// One ⟨edge-set, motif⟩ pair. Mutable only between MatchList::Acquire and
/// Commit; registered matches are immutable until released.
struct Match {
  std::vector<graph::EdgeId> edges;       // sorted stream edge ids
  std::vector<graph::VertexId> vertices;  // sorted vertex ids
  std::vector<uint8_t> degrees;  // degrees[i] = degree of vertices[i] in edges
  uint32_t node_id = 0;          // TPSTry++ motif node

  /// Clears content, keeping vector capacity (pooled slots reuse it).
  void Reset() {
    edges.clear();
    vertices.clear();
    degrees.clear();
    node_id = 0;
  }

  /// Copies `other`'s content into this record, reusing capacity.
  void CopyFrom(const Match& other) {
    edges = other.edges;
    vertices = other.vertices;
    degrees = other.degrees;
    node_id = other.node_id;
  }

  bool ContainsEdge(graph::EdgeId e) const {
    return std::binary_search(edges.begin(), edges.end(), e);
  }
  bool ContainsVertex(graph::VertexId v) const {
    return std::binary_search(vertices.begin(), vertices.end(), v);
  }

  /// Degree of `v` inside this match's edge set; 0 when absent.
  uint32_t DegreeOf(graph::VertexId v) const {
    auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
    if (it == vertices.end() || *it != v) return 0;
    return degrees[static_cast<size_t>(it - vertices.begin())];
  }

  /// Records one more incident edge at `v`: inserts the vertex at degree 1
  /// or bumps its existing degree.
  void BumpDegree(graph::VertexId v) {
    auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
    const size_t i = static_cast<size_t>(it - vertices.begin());
    if (it == vertices.end() || *it != v) {
      vertices.insert(it, v);
      degrees.insert(degrees.begin() + static_cast<ptrdiff_t>(i), 1);
    } else {
      ++degrees[i];
    }
  }

  /// Adds edge `e` = (u, v) to the record: sorted-inserts the id and bumps
  /// both endpoint degrees.
  void AddEdge(graph::EdgeId e, graph::VertexId u, graph::VertexId v) {
    auto it = std::lower_bound(edges.begin(), edges.end(), e);
    if (it != edges.end() && *it == e) return;
    edges.insert(it, e);
    BumpDegree(u);
    BumpDegree(v);
  }

  /// Removes one incident edge at `v`, dropping the vertex at degree 0.
  void DropDegree(graph::VertexId v) {
    auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
    const size_t i = static_cast<size_t>(it - vertices.begin());
    if (--degrees[i] == 0) {
      vertices.erase(it);
      degrees.erase(degrees.begin() + static_cast<ptrdiff_t>(i));
    }
  }

  /// Undoes AddEdge(e, u, v) (the join recursion's backtracking step).
  void RemoveEdge(graph::EdgeId e, graph::VertexId u, graph::VertexId v) {
    edges.erase(std::lower_bound(edges.begin(), edges.end(), e));
    DropDegree(u);
    DropDegree(v);
  }

  /// Content key for de-duplication: hashes (node_id, edges). Two matches
  /// with the same edge set and motif are the same match.
  uint64_t Key() const {
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t x) {
      h ^= x;
      h *= 0x100000001b3ULL;
    };
    mix(node_id);
    for (graph::EdgeId e : edges) mix(e + 1);
    return h;
  }
};

}  // namespace motif
}  // namespace loom

#endif  // LOOM_MOTIF_MATCH_H_
