#include "datasets/dataset_registry.h"

#include <cmath>
#include <stdexcept>

#include "graph/graph_algos.h"

#include "datasets/dblp_generator.h"
#include "datasets/lubm_generator.h"
#include "datasets/musicbrainz_generator.h"
#include "datasets/provgen_generator.h"
#include "datasets/workloads.h"

namespace loom {
namespace datasets {

std::vector<DatasetId> AllDatasets() {
  return {DatasetId::kDblp, DatasetId::kProvGen, DatasetId::kMusicBrainz,
          DatasetId::kLubm100, DatasetId::kLubm4000};
}

std::vector<DatasetId> QueryableDatasets() {
  return {DatasetId::kDblp, DatasetId::kProvGen, DatasetId::kMusicBrainz,
          DatasetId::kLubm100};
}

std::string ToString(DatasetId id) {
  switch (id) {
    case DatasetId::kDblp: return "dblp";
    case DatasetId::kProvGen: return "provgen";
    case DatasetId::kMusicBrainz: return "musicbrainz";
    case DatasetId::kLubm100: return "lubm-100";
    case DatasetId::kLubm4000: return "lubm-4000";
  }
  return "?";
}

namespace {
size_t Scaled(size_t base, double scale) {
  return static_cast<size_t>(std::llround(static_cast<double>(base) * scale));
}

// One source for the id -> scaled generator config mapping, shared by the
// materialising (MakeDataset) and lazy (EmitDatasetEdges) paths so their
// RNG streams — and hence their graphs — stay bit-identical.
DblpConfig DblpConfigFor(double scale) {
  DblpConfig cfg;
  cfg.num_papers = Scaled(12000, scale);
  return cfg;
}

ProvGenConfig ProvGenConfigFor(double scale) {
  ProvGenConfig cfg;
  cfg.num_pages = Scaled(2500, scale);
  return cfg;
}

MusicBrainzConfig MusicBrainzConfigFor(double scale) {
  MusicBrainzConfig cfg;
  cfg.num_albums = Scaled(18000, scale);
  return cfg;
}

LubmConfig LubmConfigFor(DatasetId id, double scale) {
  LubmConfig cfg;
  if (id == DatasetId::kLubm4000) {
    cfg.universities = Scaled(400, scale);
    cfg.seed = 0x40BA;
    cfg.name = "lubm-4000";
  } else {
    cfg.universities = Scaled(100, scale);
    cfg.name = "lubm-100";
  }
  return cfg;
}

}  // namespace

void EmitDatasetEdges(DatasetId id, double scale,
                      graph::LabelRegistry* registry, GraphSink* sink) {
  if (scale <= 0.0) throw std::invalid_argument("scale must be positive");
  switch (id) {
    case DatasetId::kDblp:
      EmitDblp(DblpConfigFor(scale), registry, sink);
      return;
    case DatasetId::kProvGen:
      EmitProvGen(ProvGenConfigFor(scale), registry, sink);
      return;
    case DatasetId::kMusicBrainz:
      EmitMusicBrainz(MusicBrainzConfigFor(scale), registry, sink);
      return;
    case DatasetId::kLubm100:
    case DatasetId::kLubm4000:
      EmitLubm(LubmConfigFor(id, scale), registry, sink);
      return;
  }
}

query::Workload WorkloadFor(DatasetId id, graph::LabelRegistry* registry) {
  switch (id) {
    case DatasetId::kDblp: return DblpWorkload(registry);
    case DatasetId::kProvGen: return ProvGenWorkload(registry);
    case DatasetId::kMusicBrainz: return MusicBrainzWorkload(registry);
    case DatasetId::kLubm100:
    case DatasetId::kLubm4000: return LubmWorkload(registry);
  }
  return {};
}

Dataset MakeDataset(DatasetId id, double scale) {
  if (scale <= 0.0) throw std::invalid_argument("scale must be positive");
  Dataset ds;
  switch (id) {
    case DatasetId::kDblp:
      ds = GenerateDblp(DblpConfigFor(scale));
      break;
    case DatasetId::kProvGen:
      ds = GenerateProvGen(ProvGenConfigFor(scale));
      break;
    case DatasetId::kMusicBrainz:
      ds = GenerateMusicBrainz(MusicBrainzConfigFor(scale));
      break;
    case DatasetId::kLubm100:
    case DatasetId::kLubm4000:
      ds = GenerateLubm(LubmConfigFor(id, scale));
      break;
  }
  ds.workload = WorkloadFor(id, &ds.registry);
  // Generators size entity pools up front (years, topics, agents, ...) and a
  // few pool members may end up unreferenced at small scales; streaming
  // partitioners only see vertices through edges, so compact those away.
  ds.graph = graph::DropIsolatedVertices(ds.graph);
  return ds;
}

Dataset MakeFigure1Dataset() {
  Dataset ds;
  ds.meta.name = "figure1";
  ds.meta.description = "The paper's Fig. 1 running example";

  auto& reg = ds.registry;
  const graph::LabelId a = reg.Intern("a");
  const graph::LabelId b = reg.Intern("b");
  const graph::LabelId c = reg.Intern("c");
  const graph::LabelId d = reg.Intern("d");

  // Fig. 1: two rows, 1..4 labelled a,b,c,d and 5..8 labelled b,a,d,c (we
  // use 0-based ids 0..7). Horizontal and vertical lattice edges.
  graph::LabeledGraph::Builder builder;
  const graph::VertexId v1 = builder.AddVertex(a);
  const graph::VertexId v2 = builder.AddVertex(b);
  const graph::VertexId v3 = builder.AddVertex(c);
  const graph::VertexId v4 = builder.AddVertex(d);
  const graph::VertexId v5 = builder.AddVertex(b);
  const graph::VertexId v6 = builder.AddVertex(a);
  const graph::VertexId v7 = builder.AddVertex(d);
  const graph::VertexId v8 = builder.AddVertex(c);
  builder.AddEdge(v1, v2);
  builder.AddEdge(v2, v3);
  builder.AddEdge(v3, v4);
  builder.AddEdge(v5, v6);
  builder.AddEdge(v6, v7);
  builder.AddEdge(v7, v8);
  builder.AddEdge(v1, v5);
  builder.AddEdge(v2, v6);
  builder.AddEdge(v3, v7);
  builder.AddEdge(v4, v8);
  ds.graph = builder.Build();
  ds.workload = Figure1Workload(&reg);
  return ds;
}

}  // namespace datasets
}  // namespace loom
