#include "partition/hash_partitioner.h"

namespace loom {
namespace partition {

namespace {
// SplitMix64 finaliser: decorrelates consecutive vertex ids.
inline uint64_t MixVertex(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

HashPartitioner::HashPartitioner(const PartitionerConfig& config)
    // Hash ignores capacity (it is balanced in expectation); give it slack so
    // Assign never has to divert, matching a truly stateless hash placement.
    : partitioning_(config.k, config.expected_vertices, /*nu=*/2.0) {}

graph::PartitionId HashPartitioner::HashPlace(graph::VertexId v) const {
  return static_cast<graph::PartitionId>(MixVertex(v) % partitioning_.k());
}

void HashPartitioner::Ingest(const stream::StreamEdge& e) {
  AssignAndNotify(&partitioning_, e.u, HashPlace(e.u));
  AssignAndNotify(&partitioning_, e.v, HashPlace(e.v));
}

}  // namespace partition
}  // namespace loom
