#include "core/loom_partitioner.h"

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "partition/partition_metrics.h"
#include "stream/stream_order.h"

namespace loom {
namespace core {
namespace {

LoomOptions OptionsFor(const datasets::Dataset& ds, uint32_t k,
                       size_t window = 512) {
  LoomOptions opts;
  opts.base.k = k;
  opts.base.expected_vertices = ds.NumVertices();
  opts.base.expected_edges = ds.NumEdges();
  opts.window_size = window;
  return opts;
}

TEST(LoomPartitionerTest, FullyAssignsEveryVertex) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.1);
  LoomPartitioner loom(OptionsFor(ds, 8), ds.workload, ds.registry.size());
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  for (const auto& e : es) loom.Ingest(e);
  loom.Finalize();
  EXPECT_TRUE(partition::FullyAssigned(ds.graph, loom.partitioning()));
  EXPECT_EQ(loom.WindowSize(), 0u);  // window drained
}

TEST(LoomPartitionerTest, StatsAreConsistent) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.1);
  LoomPartitioner loom(OptionsFor(ds, 8), ds.workload, ds.registry.size());
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  for (const auto& e : es) loom.Ingest(e);
  loom.Finalize();
  const LoomStats& s = loom.stats();
  EXPECT_EQ(s.edges_ingested, es.size());
  // Every edge either bypassed or was admitted to the window.
  EXPECT_EQ(s.edges_bypassed + loom.matcher_stats().edges_admitted,
            s.edges_ingested);
  // Every admitted edge was eventually assigned through a cluster (or solo).
  EXPECT_EQ(s.cluster_edges_assigned, loom.matcher_stats().edges_admitted);
  EXPECT_GT(s.clusters_allocated, 0u);
}

TEST(LoomPartitionerTest, RespectsImbalanceBound) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.1);
  LoomPartitioner loom(OptionsFor(ds, 8), ds.workload, ds.registry.size());
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  for (const auto& e : es) loom.Ingest(e);
  loom.Finalize();
  EXPECT_LT(partition::Imbalance(loom.partitioning()), 0.12);
}

TEST(LoomPartitionerTest, FinalizeIsIdempotent) {
  auto ds = datasets::MakeFigure1Dataset();
  LoomPartitioner loom(OptionsFor(ds, 2, 4), ds.workload, ds.registry.size());
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  for (const auto& e : es) loom.Ingest(e);
  loom.Finalize();
  size_t assigned = loom.partitioning().NumAssigned();
  loom.Finalize();
  EXPECT_EQ(loom.partitioning().NumAssigned(), assigned);
}

TEST(LoomPartitionerTest, TrieBuiltFromWorkload) {
  auto ds = datasets::MakeFigure1Dataset();
  LoomPartitioner loom(OptionsFor(ds, 2), ds.workload, ds.registry.size());
  EXPECT_EQ(loom.trie().NumNodes(), 11u);
  EXPECT_EQ(loom.trie().MotifIds().size(), 3u);
}

TEST(LoomPartitionerTest, NonMotifEdgesBypassWindow) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  LoomPartitioner loom(OptionsFor(ds, 4), ds.workload, ds.registry.size());
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  for (const auto& e : es) loom.Ingest(e);
  loom.Finalize();
  // ProvGen's Activity-Agent edges (support 30% < 40%) must bypass.
  EXPECT_GT(loom.stats().edges_bypassed, 0u);
  EXPECT_LT(loom.stats().edges_bypassed, es.size());
}

TEST(LoomPartitionerTest, TinyWindowStillCorrect) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.03);
  LoomPartitioner loom(OptionsFor(ds, 4, /*window=*/1), ds.workload,
                       ds.registry.size());
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  for (const auto& e : es) loom.Ingest(e);
  loom.Finalize();
  EXPECT_TRUE(partition::FullyAssigned(ds.graph, loom.partitioning()));
}

TEST(LoomPartitionerTest, WindowNeverExceedsCapacityBetweenIngests) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.03);
  const size_t t = 64;
  LoomPartitioner loom(OptionsFor(ds, 4, t), ds.workload, ds.registry.size());
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  for (const auto& e : es) {
    loom.Ingest(e);
    EXPECT_LE(loom.WindowSize(), t);
  }
}

TEST(LoomPartitionerTest, DeterministicAcrossRuns) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.03);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  LoomPartitioner a(OptionsFor(ds, 4), ds.workload, ds.registry.size());
  LoomPartitioner b(OptionsFor(ds, 4), ds.workload, ds.registry.size());
  for (const auto& e : es) {
    a.Ingest(e);
    b.Ingest(e);
  }
  a.Finalize();
  b.Finalize();
  for (graph::VertexId v = 0; v < ds.NumVertices(); ++v) {
    ASSERT_EQ(a.partitioning().PartitionOf(v), b.partitioning().PartitionOf(v));
  }
}

TEST(LoomPartitionerTest, MotifClustersColocated) {
  // The provgen E-A-E triples that Loom matches should be co-located far
  // more often than chance (1/k).
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.1);
  LoomPartitioner loom(OptionsFor(ds, 8, 2000), ds.workload,
                       ds.registry.size());
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  for (const auto& e : es) loom.Ingest(e);
  loom.Finalize();

  const graph::LabelId ent = ds.registry.Find("Entity");
  const graph::LabelId act = ds.registry.Find("Activity");
  size_t triples = 0, colocated = 0;
  const auto& part = loom.partitioning();
  for (graph::VertexId v = 0; v < ds.NumVertices(); ++v) {
    if (ds.graph.label(v) != act) continue;
    std::vector<graph::VertexId> ents;
    for (graph::VertexId w : ds.graph.Neighbors(v)) {
      if (ds.graph.label(w) == ent) ents.push_back(w);
    }
    if (ents.size() < 2) continue;
    ++triples;
    bool all = true;
    for (graph::VertexId w : ents) {
      if (part.PartitionOf(w) != part.PartitionOf(v)) all = false;
    }
    if (all) ++colocated;
  }
  ASSERT_GT(triples, 100u);
  EXPECT_GT(static_cast<double>(colocated) / static_cast<double>(triples), 0.4)
      << "motif co-location should far exceed the 1/k = 12.5% chance level";
}

}  // namespace
}  // namespace core
}  // namespace loom
