// The Fig. 4 collision analysis (Sec. 2.3).
//
// Each factor is a uniform random variable on [1, p); a factor collides with
// probability 2/p (two collision scenarios per factor class). A graph with
// |E| edges carries 3|E| factors (Handshaking lemma), so the number of
// colliding factors is Binomial(3|E|, 2/p); the paper plots
// P(X <= C% * 3|E|) against p for various |E| and tolerances C.

#ifndef LOOM_SIGNATURE_COLLISION_MODEL_H_
#define LOOM_SIGNATURE_COLLISION_MODEL_H_

#include <cstdint>
#include <vector>

namespace loom {
namespace signature {

/// P(no more than tolerance * num_factors of `num_factors` factors collide)
/// for field prime p. `tolerance` is a ratio in [0, 1].
double ProbAcceptableCollisions(uint32_t num_factors, double tolerance,
                                uint32_t p);

/// One Fig. 4 curve: the probability above for each p in `primes`.
std::vector<double> CollisionCurve(uint32_t num_factors, double tolerance,
                                   const std::vector<uint32_t>& primes);

/// The primes <= limit, for sweeping p (Fig. 4 sweeps p in [2, 317]).
std::vector<uint32_t> PrimesUpTo(uint32_t limit);

/// Monte-Carlo cross-check: draws `trials` random factor pairs uniform on
/// [1, p) and returns the observed per-factor collision rate (should be
/// close to 2/p for p >> 1). Deterministic under `seed`.
double EmpiricalFactorCollisionRate(uint32_t p, uint32_t trials, uint64_t seed);

}  // namespace signature
}  // namespace loom

#endif  // LOOM_SIGNATURE_COLLISION_MODEL_H_
