#include "serve/cut_tracker.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "io/checkpoint.h"
#include "serve/assignment_table.h"
#include "stream/stream_edge.h"

namespace loom {
namespace serve {
namespace {

stream::StreamEdge E(graph::VertexId u, graph::VertexId v) {
  stream::StreamEdge e;
  e.u = u;
  e.v = v;
  return e;
}

TEST(CutTrackerTest, ResolvesPlacedEdgesImmediately) {
  AssignmentTable table;
  CutTracker cut(&table);
  table.Publish(0, 0);
  table.Publish(1, 1);
  table.Publish(2, 0);
  cut.AddEdge(E(0, 1));  // apart → cut
  cut.AddEdge(E(0, 2));  // together → not cut
  EXPECT_EQ(cut.cut(), 1u);
  EXPECT_EQ(cut.edges_seen(), 2u);
  EXPECT_EQ(cut.pending(), 0u);
}

TEST(CutTrackerTest, ParksAndResolvesOnAssignment) {
  AssignmentTable table;
  CutTracker cut(&table);
  // Both endpoints unplaced: the edge parks on u, then re-parks on v when
  // u's placement arrives with v still pending.
  cut.AddEdge(E(5, 6));
  EXPECT_EQ(cut.pending(), 1u);
  table.Publish(5, 0);
  cut.Append(5, 0);
  EXPECT_EQ(cut.pending(), 1u);  // re-parked on 6
  EXPECT_EQ(cut.cut(), 0u);
  table.Publish(6, 1);
  cut.Append(6, 1);
  EXPECT_EQ(cut.pending(), 0u);
  EXPECT_EQ(cut.cut(), 1u);
}

// A self-loop can never be cut (its endpoints share a partition by
// definition) but it still flows through the park/resolve machinery when
// the vertex is unplaced — the counters must come back to zero pending.
TEST(CutTrackerTest, SelfLoopsNeverCut) {
  AssignmentTable table;
  CutTracker cut(&table);
  table.Publish(3, 2);
  cut.AddEdge(E(3, 3));  // already placed: resolves now, same partition
  EXPECT_EQ(cut.cut(), 0u);
  EXPECT_EQ(cut.pending(), 0u);

  cut.AddEdge(E(8, 8));  // unplaced: parks on 8 waiting for itself
  EXPECT_EQ(cut.pending(), 1u);
  table.Publish(8, 1);
  cut.Append(8, 1);
  EXPECT_EQ(cut.cut(), 0u);
  EXPECT_EQ(cut.pending(), 0u);
}

// Parallel edges park as distinct multimap entries; a single placement
// must resolve ALL of them, each contributing to the cut independently.
TEST(CutTrackerTest, DuplicateParkedPairsEachResolve) {
  AssignmentTable table;
  CutTracker cut(&table);
  table.Publish(1, 1);
  cut.AddEdge(E(0, 1));
  cut.AddEdge(E(0, 1));
  cut.AddEdge(E(0, 1));
  EXPECT_EQ(cut.pending(), 3u);
  table.Publish(0, 0);
  cut.Append(0, 0);
  EXPECT_EQ(cut.pending(), 0u);
  EXPECT_EQ(cut.cut(), 3u);
}

TEST(CutTrackerTest, CheckpointRoundTripsCountersAndParkedEdges) {
  AssignmentTable table;
  CutTracker cut(&table);
  table.Publish(0, 0);
  table.Publish(1, 1);
  cut.AddEdge(E(0, 1));  // resolved: cut
  cut.AddEdge(E(2, 3));  // parked on 2
  cut.AddEdge(E(2, 4));  // parked on 2
  EXPECT_EQ(cut.pending(), 2u);

  io::CheckpointWriter w;
  cut.Save(&w);
  const std::string path = testing::TempDir() + "/cut_roundtrip.loomck";
  w.Commit(path);

  AssignmentTable table2;
  CutTracker restored(&table2);
  io::CheckpointReader r(path);
  restored.Restore(&r);
  EXPECT_EQ(restored.cut(), 1u);
  EXPECT_EQ(restored.edges_seen(), 3u);
  EXPECT_EQ(restored.pending(), 2u);

  // The restored parked state keeps resolving exactly like the original's.
  table2.Publish(2, 0);
  restored.Append(2, 0);
  table2.Publish(3, 1);
  restored.Append(3, 1);
  table2.Publish(4, 0);
  restored.Append(4, 0);
  EXPECT_EQ(restored.pending(), 0u);
  EXPECT_EQ(restored.cut(), 2u);  // (2,3) apart, (2,4) together
}

// pending_count_ travels separately from the parked entries; Restore must
// recompute the relationship and reject a desynced counter instead of
// mis-reporting the cut forever after resume.
TEST(CutTrackerTest, RestoreRejectsPendingCounterDesync) {
  io::CheckpointWriter w;
  w.BeginSection("serve.cut");
  w.U64(0);  // cut
  w.U64(2);  // edges_seen
  w.U64(5);  // pending_count claims 5; only one parked entry follows
  w.U64(1);
  w.U32(7);
  w.U32(8);
  w.EndSection();
  const std::string path = testing::TempDir() + "/cut_desync.loomck";
  w.Commit(path);

  AssignmentTable table;
  CutTracker cut(&table);
  io::CheckpointReader r(path);
  EXPECT_THROW(
      {
        try {
          cut.Restore(&r);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("pending counter"),
                    std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST(CutTrackerTest, RestoreRejectsCheckpointWithoutCutSection) {
  io::CheckpointWriter w;
  w.BeginSection("unrelated");
  w.U64(1);
  w.EndSection();
  const std::string path = testing::TempDir() + "/cut_nosection.loomck";
  w.Commit(path);

  AssignmentTable table;
  CutTracker cut(&table);
  io::CheckpointReader r(path);
  EXPECT_THROW(cut.Restore(&r), std::runtime_error);
}

}  // namespace
}  // namespace serve
}  // namespace loom
