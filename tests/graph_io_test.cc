#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "datasets/dataset_registry.h"

namespace loom {
namespace graph {
namespace {

TEST(GraphIoTest, RoundTripSmallGraph) {
  LabelRegistry reg;
  reg.Intern("a");
  reg.Intern("b");
  LabeledGraph::Builder b;
  VertexId v0 = b.AddVertex(0);
  VertexId v1 = b.AddVertex(1);
  VertexId v2 = b.AddVertex(0);
  b.AddEdge(v0, v1);
  b.AddEdge(v1, v2);
  LabeledGraph g = b.Build();

  std::stringstream ss;
  WriteGraph(g, reg, ss);

  LabelRegistry reg2;
  LabeledGraph g2 = ReadGraph(ss, &reg2);
  EXPECT_EQ(g2.NumVertices(), g.NumVertices());
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  EXPECT_EQ(reg2.size(), reg.size());
  EXPECT_EQ(reg2.Name(0), "a");
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g2.label(v), g.label(v));
  }
  EXPECT_TRUE(g2.HasEdge(0, 1));
  EXPECT_TRUE(g2.HasEdge(1, 2));
  EXPECT_FALSE(g2.HasEdge(0, 2));
}

TEST(GraphIoTest, RoundTripFigure1Dataset) {
  datasets::Dataset ds = datasets::MakeFigure1Dataset();
  std::stringstream ss;
  WriteGraph(ds.graph, ds.registry, ss);
  LabelRegistry reg2;
  LabeledGraph g2 = ReadGraph(ss, &reg2);
  EXPECT_EQ(g2.NumVertices(), ds.graph.NumVertices());
  EXPECT_EQ(g2.NumEdges(), ds.graph.NumEdges());
}

TEST(GraphIoTest, IgnoresCommentsAndBlankLines) {
  std::stringstream ss("# comment\n\nL a\nV 0 0\nV 1 0\nE 0 1\n");
  LabelRegistry reg;
  LabeledGraph g = ReadGraph(ss, &reg);
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphIoTest, RejectsUnknownRecordKind) {
  std::stringstream ss("X nonsense\n");
  LabelRegistry reg;
  EXPECT_THROW(ReadGraph(ss, &reg), std::runtime_error);
}

TEST(GraphIoTest, RejectsLabelOutOfRange) {
  std::stringstream ss("L a\nV 0 3\n");
  LabelRegistry reg;
  EXPECT_THROW(ReadGraph(ss, &reg), std::runtime_error);
}

TEST(GraphIoTest, RejectsSparseVertexIds) {
  std::stringstream ss("L a\nV 0 0\nV 2 0\nE 0 2\n");
  LabelRegistry reg;
  EXPECT_THROW(ReadGraph(ss, &reg), std::runtime_error);
}

TEST(GraphIoTest, RejectsEdgeEndpointOutOfRange) {
  std::stringstream ss("L a\nV 0 0\nE 0 5\n");
  LabelRegistry reg;
  EXPECT_THROW(ReadGraph(ss, &reg), std::runtime_error);
}

TEST(GraphIoTest, MissingFileThrows) {
  LabelRegistry reg;
  EXPECT_THROW(ReadGraphFile("/nonexistent/path/graph.txt", &reg),
               std::runtime_error);
}

}  // namespace
}  // namespace graph
}  // namespace loom
