// "loom-sharded": shard-per-thread ingest for the Loom partitioner.
//
// The vertex space is hashed into S shards (owner(v) = v mod S). Each shard
// runs on a dedicated worker thread and owns, for its vertices, the
// streamed-so-far adjacency slice, the label bookkeeping and a private
// admission-memo matcher; `IngestBatch` is the fan-out point that posts
// batch slices to every shard's bounded queue (core/shard_sequencer.h).
// The calling thread is the *sequencer*: after the fan-out barrier it
// replays the paper's per-edge decision pipeline — admission branch,
// window/matcher, equal-opportunism evictions, LDG placements — in exact
// stream order against shared partition state, reading adjacency through a
// prefix-filtered NeighborView whose per-vertex visibility cursors advance
// one edge at a time.
//
// Determinism guarantee: the output (assignments, edge-cut, imbalance and
// the observer event sequence) is BIT-IDENTICAL to single-threaded
// LoomPartitioner for every S, every batch split and every thread
// interleaving. The argument is structural:
//   1. Worker-side work is a pure function of the slice plus shard-owned
//      state (adjacency appends in stream order, label sets, memoised
//      admission probes) — no decision state is touched off-sequencer.
//   2. Dispatch() is a barrier, so the sequencer never runs concurrently
//      with workers; its reads go through visibility cursors that expose
//      exactly the adjacency prefix a single-threaded DynamicGraph would
//      hold at the same stream position (the cursor for edge i's endpoints
//      is bumped before edge i's decisions, mirroring AddEdge-then-decide).
//   3. The sequencer's pipeline is the same code path over the same state
//      transitions as LoomPartitioner (pinned by the differential suite in
//      tests/sharded_equivalence_test.cc and the TSan CI leg).
// What parallelises across shards is therefore the graph-build +
// admission-probe portion of the stream (plus their allocations), while
// the decision pipeline stays a single sequenced stream — see
// docs in README.md ("loom-sharded") for how to read the sequencing stats
// and the scaling expectations this implies.

#ifndef LOOM_CORE_LOOM_SHARDED_H_
#define LOOM_CORE_LOOM_SHARDED_H_

#include <algorithm>
#include <cassert>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/equal_opportunism.h"
#include "core/loom_partitioner.h"
#include "core/shard_sequencer.h"
#include "graph/neighbor_view.h"
#include "motif/match_list.h"
#include "motif/motif_matcher.h"
#include "partition/partitioner.h"
#include "query/query.h"
#include "signature/label_values.h"
#include "signature/signature_calculator.h"
#include "stream/sliding_window.h"

namespace loom {
namespace core {

/// Sharding knobs on top of the sequential pipeline's LoomOptions.
struct LoomShardedOptions {
  LoomOptions loom;

  /// S: shard worker threads / vertex-space slices (>= 1).
  uint32_t shards = 4;

  /// Bounded work-queue depth per shard (backpressure for the fan-out).
  size_t shard_queue_depth = 4;

  /// Edges per fan-out work item (batches are cut into slices this size).
  size_t slice_edges = 256;
};

/// One shard's slice of the streamed-so-far graph: labels and adjacency
/// for vertices with owner(v) == shard, indexed by local id v / S.
/// Adjacency lives in a chunk-stable AdjacencyArena — this is the layer the
/// arena was built for (ROADMAP item 1): published pages never move, so
/// the worker can append while a reader walks an already-published prefix.
/// Today's pipeline still separates the phases with the Dispatch barrier;
/// the arena removes the data-structure obstacle to overlapping them.
class ShardGraphPart {
 public:
  /// Forwarded before any appends (shard parts are default-constructed
  /// inside a vector, so the page knob arrives after construction).
  void ConfigurePageCapacity(uint32_t requested) {
    arena_.ConfigurePageCapacity(requested);
  }

  void Reserve(size_t local_slots) {
    if (labels_.size() < local_slots) {
      labels_.resize(local_slots, graph::kInvalidLabel);
      arena_.Reserve(local_slots);
    }
  }

  /// Pre-carves arena slab storage for this shard's share of the expected
  /// adjacency entries (allocation hint only; see
  /// AdjacencyArena::ReserveEntries).
  void ReserveEntries(uint64_t expected_entries) {
    arena_.ReserveEntries(expected_entries);
  }

  /// Mirrors DynamicGraph::TouchVertex (idempotent; relabelling asserts).
  void TouchVertex(graph::VertexId local, graph::LabelId label) {
    assert(label != graph::kInvalidLabel);
    if (local >= labels_.size()) {
      labels_.resize(local + 1, graph::kInvalidLabel);
      arena_.Reserve(labels_.size());
    }
    if (labels_[local] == graph::kInvalidLabel) {
      labels_[local] = label;
      ++num_vertices_;
    } else {
      assert(labels_[local] == label &&
             "vertex relabelled with a different label");
    }
  }

  /// Mirrors one endpoint's half of DynamicGraph::AddEdge (appends stay in
  /// stream order per vertex; published with release, see the arena).
  void Append(graph::VertexId local, graph::VertexId neighbor) {
    arena_.Append(local, neighbor);
  }

  bool Known(graph::VertexId local) const {
    return local < labels_.size() && labels_[local] != graph::kInvalidLabel;
  }

  size_t LocalSlots() const { return labels_.size(); }
  size_t NumVertices() const { return num_vertices_; }

  /// Published entries in local's chain (0 out of range).
  uint32_t Degree(graph::VertexId local) const { return arena_.Degree(local); }

  /// Raw field dump into the writer's open section (ShardedSeenGraph frames
  /// the "shards" section around all parts). Chain encoding is
  /// byte-identical to the pre-arena PodVec-per-slot layout.
  void SaveTo(io::CheckpointWriter* w) const {
    w->U64(num_vertices_);
    w->PodVec(labels_);
    w->U64(labels_.size());
    for (graph::VertexId local = 0; local < labels_.size(); ++local) {
      arena_.SaveChain(w, local);
    }
  }
  void LoadFrom(io::CheckpointReader* r) {
    num_vertices_ = r->U64();
    r->PodVec(&labels_);
    const uint64_t slots = r->U64();
    if (slots != labels_.size()) {
      r->Fail("shard slice: adjacency/label table size mismatch");
    }
    arena_.Reserve(slots);
    for (graph::VertexId local = 0; local < slots; ++local) {
      arena_.LoadChain(r, local);
    }
  }

  graph::NeighborRange Prefix(graph::VertexId local, uint32_t visible) const {
    // The determinism guarantee rests on cursor bumps never outrunning the
    // workers' appends; the arena asserts visible <= published count — a
    // violation must fail loudly, not skew scores silently.
    return arena_.Prefix(local, visible);
  }

 private:
  std::vector<graph::LabelId> labels_;
  graph::AdjacencyArena arena_;
  size_t num_vertices_ = 0;
};

/// NeighborView over the shard parts. Workers append arbitrarily far ahead
/// (whole dispatched batches); the sequencer's per-vertex visibility
/// cursors cut every read back to exactly the prefix a single-threaded
/// DynamicGraph would contain at the current stream position.
class ShardedSeenGraph final : public graph::NeighborView {
 public:
  /// `page_entries` caps every shard slice's arena page capacity
  /// (0 = LOOM_ADJ_PAGE / 64; layout-only, see AdjacencyArena).
  explicit ShardedSeenGraph(uint32_t num_shards, uint32_t page_entries = 0)
      : parts_(num_shards), visible_(num_shards) {
    for (ShardGraphPart& p : parts_) p.ConfigurePageCapacity(page_entries);
  }

  ShardGraphPart& part(uint32_t shard) { return parts_[shard]; }
  uint32_t num_shards() const { return static_cast<uint32_t>(parts_.size()); }

  /// Sequencer only: make edge `e`'s adjacency entries visible (called
  /// before e's decisions, mirroring Loom's AddEdge-then-decide order). A
  /// self-loop has exactly one entry (canonical form, matching
  /// DynamicGraph::AddEdge), so its cursor bumps once.
  void Advance(graph::VertexId u, graph::VertexId v) {
    Bump(u);
    if (u != v) Bump(v);
  }

  graph::NeighborRange Neighbors(graph::VertexId v) const override {
    const uint32_t s = Owner(v);
    const graph::VertexId local = Local(v);
    const std::vector<uint32_t>& vis = visible_[s];
    if (local >= vis.size()) return {};
    return parts_[s].Prefix(local, vis[local]);
  }

  /// Visible degree IS the sequencer's cursor — no range construction.
  size_t Degree(graph::VertexId v) const override {
    const uint32_t s = Owner(v);
    const graph::VertexId local = Local(v);
    const std::vector<uint32_t>& vis = visible_[s];
    return local < vis.size() ? vis[local] : 0;
  }

  bool Known(graph::VertexId v) const {
    return parts_[Owner(v)].Known(Local(v));
  }

  /// Max touched vertex id + 1 across all shards (DynamicGraph::NumSlots).
  size_t NumSlots() const {
    size_t slots = 0;
    for (uint32_t s = 0; s < num_shards(); ++s) {
      const size_t local_slots = parts_[s].LocalSlots();
      if (local_slots == 0) continue;
      slots = std::max(slots,
                       (local_slots - 1) * num_shards() + s + 1);
    }
    return slots;
  }

  size_t NumVertices() const {
    size_t n = 0;
    for (const ShardGraphPart& p : parts_) n += p.NumVertices();
    return n;
  }

  uint32_t Owner(graph::VertexId v) const { return v % num_shards(); }
  graph::VertexId Local(graph::VertexId v) const {
    return v / num_shards();
  }

  /// Writes every shard's slice plus the sequencer's visibility cursors as
  /// checkpoint section "shards". The cursors are state, not cache: they
  /// define exactly which adjacency prefix each future decision may read.
  void SaveTo(io::CheckpointWriter* w) const {
    w->BeginSection("shards");
    w->U32(num_shards());
    for (const ShardGraphPart& p : parts_) p.SaveTo(w);
    for (const std::vector<uint32_t>& vis : visible_) w->PodVec(vis);
    w->EndSection();
  }

  /// Restores a SaveTo snapshot; shard-count mismatch throws via r->Fail
  /// (owner(v) = v mod S — a different S reshuffles every vertex's shard).
  void LoadFrom(io::CheckpointReader* r) {
    r->Open("shards");
    const uint32_t shards = r->U32();
    if (shards != num_shards()) {
      r->Fail("shard count mismatch: checkpoint has S=" +
              std::to_string(shards) + ", this run was configured with S=" +
              std::to_string(num_shards()) +
              " (resume with the checkpointed shard count)");
    }
    for (ShardGraphPart& p : parts_) p.LoadFrom(r);
    for (std::vector<uint32_t>& vis : visible_) r->PodVec(&vis);
    // The cursors define which adjacency prefix every future decision may
    // read; a cursor past its chain (hand-edited or cross-wired file)
    // would trip the Prefix assert later — or silently read junk in
    // release builds. Reject at the boundary instead.
    for (uint32_t s = 0; s < num_shards(); ++s) {
      const std::vector<uint32_t>& vis = visible_[s];
      if (vis.size() > parts_[s].LocalSlots()) {
        r->Fail("shard " + std::to_string(s) + ": " +
                std::to_string(vis.size()) +
                " visibility cursors for a slice with " +
                std::to_string(parts_[s].LocalSlots()) + " local slots");
      }
      for (graph::VertexId local = 0; local < vis.size(); ++local) {
        if (vis[local] > parts_[s].Degree(local)) {
          r->Fail("shard " + std::to_string(s) + ", local vertex " +
                  std::to_string(local) + ": visibility cursor " +
                  std::to_string(vis[local]) + " exceeds the stored degree " +
                  std::to_string(parts_[s].Degree(local)) +
                  " (corrupt or cross-wired checkpoint)");
        }
      }
    }
    r->Close();
  }

 private:
  void Bump(graph::VertexId v) {
    std::vector<uint32_t>& vis = visible_[Owner(v)];
    const graph::VertexId local = Local(v);
    if (local >= vis.size()) vis.resize(local + 1, 0);
    ++vis[local];
  }

  std::vector<ShardGraphPart> parts_;
  std::vector<std::vector<uint32_t>> visible_;  // sequencer-owned cursors
};

class LoomShardedPartitioner : public partition::Partitioner {
 public:
  LoomShardedPartitioner(const LoomShardedOptions& options,
                         const query::Workload& workload, size_t num_labels);
  ~LoomShardedPartitioner() override = default;

  void Ingest(const stream::StreamEdge& e) override;
  /// Fan-out entry point. Single-edge batches (and thus Ingest) run the
  /// shard work inline on the calling thread — same code, same output, no
  /// cross-thread round trip for work with no parallelism to extract.
  void IngestBatch(std::span<const stream::StreamEdge> batch) override;
  void Finalize() override;
  void FillProgress(engine::ProgressEvent* progress) const override;
  /// Bit-identical keys/values to "loom" (the sequencer runs the same
  /// pipeline); timing-dependent queue stats stay in ProgressEvent.
  void FillFinalStats(engine::FinalStatsEvent* stats) const override;

  /// Workload drift, mirroring LoomPartitioner::UpdateWorkload; also
  /// invalidates every shard's admission memo (safe: shards are quiescent
  /// between Dispatch barriers).
  void UpdateWorkload(const query::Workload& workload, double decay = 0.5);

  const partition::Partitioning& partitioning() const override {
    return partitioning_;
  }
  std::string name() const override { return "loom-sharded"; }

  /// Full pipeline snapshot via the shared Loom codec plus the per-shard
  /// graph slices and visibility cursors.
  bool SaveState(io::CheckpointWriter* w, std::string* error) const override;
  bool RestoreState(io::CheckpointReader* r, std::string* error) override;

  const LoomStats& stats() const { return stats_; }
  const ShardSequencerStats& sequencer_stats() const { return team_->stats(); }
  uint32_t num_shards() const { return team_->num_shards(); }
  size_t WindowSize() const { return window_.size(); }
  const motif::MatchPool& match_pool() const { return match_list_.pool(); }

 private:
  /// Worker-side slice handler (runs on shard threads; shard-owned state
  /// plus this shard's admission cells only).
  void ProcessSlice(uint32_t shard, const ShardTeam::Slice& slice);

  // Sequencer-side pipeline — same transitions as LoomPartitioner's
  // IngestWithAdmission / EvictOldest / Finalize, reading adjacency
  // through seen_. Kept in lockstep with core/loom_partitioner.cc; the
  // differential suite pins bit-identity.
  void IngestSequenced(const stream::StreamEdge& e, bool admitted);

  /// Open-alphabet growth, mirroring LoomPartitioner::EnsureLabelSpace;
  /// runs on the sequencer thread while workers are quiescent (before
  /// Dispatch), so re-fitting every shard's admission memo is race-free.
  void EnsureLabelSpace(graph::LabelId max_label);

  bool IsDeferred(graph::VertexId v, graph::LabelId label);
  void AssignVertex(graph::VertexId v, graph::PartitionId p);
  void AssignImmediately(const stream::StreamEdge& e);
  void EvictOldest();

  LoomShardedOptions options_;
  size_t ctor_num_labels_;  // label space at construction (checkpoint id)
  partition::Partitioning partitioning_;
  ShardedSeenGraph seen_;
  /// Hub tally rows over the VISIBLE adjacency (hooked on Advance, not on
  /// the workers' appends), so they equal the serial backend's at every
  /// sequenced position. Derived state; rebuilt on restore.
  partition::HubTallyCache hub_;

  std::unique_ptr<signature::LabelValues> label_values_;
  std::unique_ptr<signature::SignatureCalculator> calc_;
  std::unique_ptr<tpstry::Tpstry> trie_;
  std::unique_ptr<motif::MotifMatcher> matcher_;  // sequencer's matcher
  std::unique_ptr<EqualOpportunism> allocator_;

  /// Per-shard admission matchers (private memo tables; probed from the
  /// owning worker thread only).
  std::vector<std::unique_ptr<motif::MotifMatcher>> shard_matchers_;

  stream::SlidingWindow window_;
  motif::MatchList match_list_;
  std::vector<uint8_t> motif_label_;
  LoomStats stats_;
  uint64_t edges_since_compact_ = 0;

  // Eviction-path scratch (mirrors LoomPartitioner).
  std::vector<motif::MatchHandle> me_scratch_;
  std::vector<graph::EdgeId> assign_scratch_;

  /// Per-batch admission bits, indexed by batch position. Sized by the
  /// sequencer before dispatch; cell i written only by owner(batch[i].u).
  std::vector<uint8_t> admit_scratch_;

  /// Last member: joins its workers before anything they reference dies.
  std::unique_ptr<ShardTeam> team_;
};

}  // namespace core
}  // namespace loom

#endif  // LOOM_CORE_LOOM_SHARDED_H_
