#include "core/equal_opportunism.h"

#include <gtest/gtest.h>

#include "datasets/workloads.h"
#include "graph/dynamic_graph.h"

namespace loom {
namespace core {
namespace {

// Shared fixture: Fig. 1 trie (motifs a-b @1.0, b-c @0.7, a-b-c @0.7) plus a
// small adjacency for the neighbour-bid term.
class EqualOpportunismTest : public ::testing::Test {
 protected:
  EqualOpportunismTest()
      : values_(4, 251, 0xC0FFEE), calc_(&values_), trie_(&calc_, 0.4) {
    auto workload = datasets::Figure1Workload(&registry_);
    for (const auto& q : workload.queries()) {
      trie_.AddQuery(q.pattern, q.frequency);
    }
    // Locate motif node ids by edge count/support for use in matches.
    for (uint32_t id = 1; id < trie_.NumNodes(); ++id) {
      if (!trie_.IsMotif(id)) continue;
      if (trie_.node(id).num_edges == 2) {
        abc_node_ = id;
      } else if (trie_.NormalizedSupport(id) > 0.99) {
        ab_node_ = id;
      } else {
        bc_node_ = id;
      }
    }
    for (graph::VertexId v = 0; v < 32; ++v) seen_.TouchVertex(v, 0);
  }

  motif::MatchHandle MakeMatch(std::vector<graph::EdgeId> edges,
                               std::vector<graph::VertexId> vertices,
                               uint32_t node) {
    motif::MatchHandle h = ml_.Acquire();
    motif::Match& m = ml_.match(h);
    m.edges = std::move(edges);
    m.vertices = std::move(vertices);
    m.degrees.assign(m.vertices.size(), 1);
    m.node_id = node;
    EXPECT_TRUE(ml_.Commit(h));
    return h;
  }

  graph::LabelRegistry registry_;
  signature::LabelValues values_;
  signature::SignatureCalculator calc_;
  tpstry::Tpstry trie_;
  graph::DynamicGraph seen_;
  motif::MatchList ml_;
  uint32_t ab_node_ = 0, bc_node_ = 0, abc_node_ = 0;
};

TEST_F(EqualOpportunismTest, RationBoundsAndMonotonicity) {
  EqualOpportunism eo(&trie_, &seen_, {});
  partition::Partitioning p(3, 300);
  // Equal (empty) partitions: full ration everywhere.
  for (graph::PartitionId si = 0; si < 3; ++si) {
    EXPECT_DOUBLE_EQ(eo.Ration(si, p), 1.0);
  }
  // Make partition 0 larger: its ration must drop below the smaller ones'.
  for (graph::VertexId v = 0; v < 12; ++v) p.Assign(v, 0);
  for (graph::VertexId v = 12; v < 23; ++v) p.Assign(v, 1);
  for (graph::VertexId v = 23; v < 33; ++v) p.Assign(v, 2);
  EXPECT_LE(eo.Ration(0, p), eo.Ration(2, p));
  EXPECT_DOUBLE_EQ(eo.Ration(2, p), 1.0);  // smallest partition
  for (graph::PartitionId si = 0; si < 3; ++si) {
    EXPECT_GE(eo.Ration(si, p), 0.0);
    EXPECT_LE(eo.Ration(si, p), 1.0);
  }
}

TEST_F(EqualOpportunismTest, RationZeroBeyondBalanceBound) {
  EqualOpportunismConfig cfg;
  cfg.balance_b = 1.1;
  EqualOpportunism eo(&trie_, &seen_, cfg);
  partition::Partitioning p(2, 1000);
  // 40 vs 20 assigned: partition 0 is at 1.33x the average (30) > 1.1x.
  for (graph::VertexId v = 0; v < 40; ++v) p.Assign(v, 0);
  for (graph::VertexId v = 40; v < 60; ++v) p.Assign(v, 1);
  EXPECT_DOUBLE_EQ(eo.Ration(0, p), 0.0);
  EXPECT_GT(eo.Ration(1, p), 0.0);
}

TEST_F(EqualOpportunismTest, DisableRationing) {
  EqualOpportunismConfig cfg;
  cfg.disable_rationing = true;
  EqualOpportunism eo(&trie_, &seen_, cfg);
  partition::Partitioning p(2, 100);
  for (graph::VertexId v = 0; v < 50; ++v) p.Assign(v, 0);
  EXPECT_DOUBLE_EQ(eo.Ration(0, p), 1.0);
}

TEST_F(EqualOpportunismTest, DecideFollowsVertexOverlap) {
  EqualOpportunismConfig cfg;
  cfg.neighbor_bid_weight = 0.0;  // isolate Eq. 1's vertex overlap
  EqualOpportunism eo(&trie_, &seen_, cfg);
  partition::Partitioning p(2, 100);
  p.Assign(10, 1);  // vertex 10 lives in partition 1
  p.Assign(20, 0);  // balance the sizes so rations are equal
  auto m = MakeMatch({0}, {10, 11}, ab_node_);
  std::vector<motif::MatchHandle> me{m};
  auto decision = eo.Decide(ml_, me, p, /*fallback=*/0);
  EXPECT_EQ(decision.partition, 1u);
  ASSERT_EQ(decision.take, 1u);
  EXPECT_EQ(me[0], m);
}

TEST_F(EqualOpportunismTest, DecideFallsBackWhenNoOverlap) {
  EqualOpportunismConfig cfg;
  cfg.neighbor_bid_weight = 0.0;
  EqualOpportunism eo(&trie_, &seen_, cfg);
  partition::Partitioning p(4, 100);
  auto m = MakeMatch({0}, {10, 11}, ab_node_);
  std::vector<motif::MatchHandle> me{m};
  auto decision = eo.Decide(ml_, me, p, /*fallback=*/3);
  EXPECT_EQ(decision.partition, 3u);
  // Fallback takes the whole cluster.
  EXPECT_EQ(decision.take, 1u);
}

TEST_F(EqualOpportunismTest, NeighborBidAttractsClusters) {
  EqualOpportunismConfig cfg;
  cfg.neighbor_bid_weight = 0.5;
  EqualOpportunism eo(&trie_, &seen_, cfg);
  partition::Partitioning p(2, 100);
  // Match vertices are unassigned, but vertex 10's neighbour 5 is in
  // partition 1 (and sizes are balanced).
  seen_.AddEdge(10, 5);
  p.Assign(5, 1);
  p.Assign(6, 0);
  auto m = MakeMatch({0}, {10, 11}, ab_node_);
  std::vector<motif::MatchHandle> me{m};
  auto decision = eo.Decide(ml_, me, p, /*fallback=*/0);
  EXPECT_EQ(decision.partition, 1u);
}

TEST_F(EqualOpportunismTest, SupportOrderingPrioritisesHighSupport) {
  EqualOpportunism eo(&trie_, &seen_, {});
  partition::Partitioning p(2, 100);
  p.Assign(10, 1);
  p.Assign(20, 0);
  // Two matches sharing edge 0: the a-b single (support 1.0) must sort ahead
  // of the a-b-c pair (support 0.7).
  auto low = MakeMatch({0, 1}, {10, 11, 12}, abc_node_);
  auto high = MakeMatch({0}, {10, 11}, ab_node_);
  std::vector<motif::MatchHandle> me{low, high};
  auto decision = eo.Decide(ml_, me, p, 0);
  ASSERT_GE(decision.take, 1u);
  EXPECT_EQ(me[0], high);
}

TEST_F(EqualOpportunismTest, EmptyClusterUsesFallback) {
  EqualOpportunism eo(&trie_, &seen_, {});
  partition::Partitioning p(2, 100);
  std::vector<motif::MatchHandle> me;
  auto decision = eo.Decide(ml_, me, p, 1);
  EXPECT_EQ(decision.partition, 1u);
  EXPECT_EQ(decision.take, 0u);
}

TEST_F(EqualOpportunismTest, PaperWorkedExampleRationHalfish) {
  // Sec. 4's example: S1 33.3% larger than S2 gives l(S1) = 1/2 under the
  // paper's own arithmetic (1/1.33 * 2/3 = 0.5 with the reciprocal reading).
  EqualOpportunismConfig cfg;
  cfg.balance_b = 2.0;  // the example ignores the b cutoff
  EqualOpportunism eo(&trie_, &seen_, cfg);
  partition::Partitioning p(2, 1000);
  for (graph::VertexId v = 0; v < 40; ++v) p.Assign(v, 0);
  for (graph::VertexId v = 40; v < 70; ++v) p.Assign(v, 1);
  EXPECT_NEAR(eo.Ration(0, p), (30.0 / 40.0) * (2.0 / 3.0), 1e-9);
  EXPECT_DOUBLE_EQ(eo.Ration(1, p), 1.0);
}

}  // namespace
}  // namespace core
}  // namespace loom
