// Minimal CSV emission for experiment results so series can be re-plotted
// outside the harness.

#ifndef LOOM_UTIL_CSV_WRITER_H_
#define LOOM_UTIL_CSV_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace loom {
namespace util {

/// Writes RFC-4180-ish CSV: cells containing commas, quotes or newlines are
/// quoted, embedded quotes doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row. No trailing comma; ends with '\n'.
  void WriteRow(const std::vector<std::string>& cells);

  /// Escapes a single cell per the quoting rules above.
  static std::string Escape(const std::string& cell);

 private:
  std::ostream& os_;
};

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_CSV_WRITER_H_
