// One-stop construction of the paper's five evaluation datasets (Table 1) at
// reproduction scale, with their workloads attached.

#ifndef LOOM_DATASETS_DATASET_REGISTRY_H_
#define LOOM_DATASETS_DATASET_REGISTRY_H_

#include <string>
#include <vector>

#include "datasets/graph_sink.h"
#include "datasets/schema.h"

namespace loom {
namespace datasets {

/// The Table 1 datasets.
enum class DatasetId {
  kDblp,
  kProvGen,
  kMusicBrainz,
  kLubm100,
  kLubm4000,
};

/// All ids in Table 1 order.
std::vector<DatasetId> AllDatasets();

/// The four datasets the paper queries (Figs. 7-8 exclude LUBM-4000, whose
/// partitioned form exceeded the authors' experimental setup too).
std::vector<DatasetId> QueryableDatasets();

std::string ToString(DatasetId id);

/// Builds a dataset at reproduction scale multiplied by `scale` (1.0 =
/// defaults: tens of thousands of edges, preserving the paper's relative
/// dataset ordering by size and each dataset's |LV|). Deterministic.
Dataset MakeDataset(DatasetId id, double scale = 1.0);

/// The paper's Fig. 1 toy graph G (8 vertices, labels a/b/c/d) plus its
/// workload; used by the quickstart example and tests.
Dataset MakeFigure1Dataset();

/// Lazily runs dataset `id`'s generator walk at `scale` into `sink` — the
/// same configs and RNG streams as MakeDataset, with no graph materialised.
/// Note MakeDataset additionally normalises the built graph (self-loop /
/// duplicate dropping, DropIsolatedVertices); a consumer that needs the
/// exact edge ids MakeDataset's graph would have must replicate that
/// normalisation (engine::GeneratorEdgeSource does).
void EmitDatasetEdges(DatasetId id, double scale,
                      graph::LabelRegistry* registry, GraphSink* sink);

/// The dataset's canonical workload, interned against `registry` (which
/// must already hold the dataset's labels, in generator order).
query::Workload WorkloadFor(DatasetId id, graph::LabelRegistry* registry);

}  // namespace datasets
}  // namespace loom

#endif  // LOOM_DATASETS_DATASET_REGISTRY_H_
