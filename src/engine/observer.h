// Structured event hooks for partitioner instrumentation.
//
// Before the engine facade, every consumer pulled behavioural counters
// through backend-specific getters (LoomStats here, MatcherStats there,
// match-pool counters somewhere else) — each new report meant another
// getter. EngineObserver inverts that: partitioners emit a small set of
// structured events at their decision points and any number of subscribers
// (eval harness, progress bars, tests) accumulate what they care about,
// uniformly across backends.
//
// Events are fired synchronously on the ingest path, so implementations
// must be cheap; a null observer costs one predictable branch. Baseline
// backends (hash/ldg/fennel) emit only on_assign and on_progress; Loom
// additionally emits on_eviction and on_cluster_decision.
//
// This header deliberately depends only on graph/types.h (plus standard
// containers) so every layer (partition, core, eval) can include it
// without cycles.

#ifndef LOOM_ENGINE_OBSERVER_H_
#define LOOM_ENGINE_OBSERVER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace loom {
namespace engine {

/// A vertex received its permanent partition. Fired once per vertex (vertex
/// assignment is first-writer-wins); `partition` is the placement actually
/// used after capacity diversion.
struct AssignEvent {
  graph::VertexId vertex = graph::kInvalidVertex;
  graph::PartitionId partition = graph::kNoPartition;
};

/// An EDGE received its permanent partition (edge-partitioning backends
/// only: hdrf/dbh place edges, not vertices — see partition/edge/). Fired
/// once per ingested edge, in stream order. Vertex-partitioning backends
/// never emit this; they fire OnAssign instead. Both endpoint ids ride
/// along so sinks can emit "<u>\t<v>\t<partition>" without a lookup.
struct EdgeAssignEvent {
  graph::EdgeId edge = graph::kInvalidEdge;
  graph::VertexId u = graph::kInvalidVertex;
  graph::VertexId v = graph::kInvalidVertex;
  graph::PartitionId partition = graph::kNoPartition;
};

/// An edge left Loom's sliding window by aging out (not by being claimed
/// early as part of another edge's cluster).
struct EvictionEvent {
  graph::EdgeId edge = graph::kInvalidEdge;
  /// Live matches containing the evictee at eviction time (0 = its matches
  /// all died earlier; the edge falls back to immediate LDG placement).
  uint64_t cluster_size = 0;
};

/// Equal opportunism allocated an evictee's match cluster (Sec. 4, Eq. 3).
struct ClusterDecisionEvent {
  graph::PartitionId partition = graph::kNoPartition;
  /// |Me|: live matches containing the evicted edge.
  uint64_t cluster_size = 0;
  /// Length of the support-ordered prefix the winner took.
  uint64_t take = 0;
  /// Window edges assigned (and removed) by this decision.
  uint64_t edges_assigned = 0;
  /// True when every bid was zero and the LDG fallback picked the partition.
  bool used_fallback = false;
};

/// Periodic ingest progress (fired by engine::Drive at a coarse interval
/// and once after Finalize with the final totals).
struct ProgressEvent {
  /// Backends that track lifetime totals (Loom) report edges ingested
  /// across their whole life — consistent with edges_bypassed even when a
  /// stream resumes after a Finalize checkpoint; for stateless baselines
  /// this is the current drive's count.
  uint64_t edges_ingested = 0;
  /// Edges that failed the admission test and bypassed the window (always 0
  /// for the baseline backends, which buffer nothing).
  uint64_t edges_bypassed = 0;
  /// Current window population (Loom's |Ptemp|; 0 for baselines).
  uint64_t window_population = 0;
  // Cross-shard sequencing stats, filled only by "loom-sharded" (0
  // elsewhere): shard worker count, fan-out work items posted so far, and
  // how many posts blocked on a full shard queue (backpressure; timing-
  // dependent, reporting-only — never part of partition state).
  uint64_t shards = 0;
  uint64_t shard_slices = 0;
  uint64_t shard_queue_stalls = 0;
  bool finalizing = false;
};

/// One IngestBatch call completed. Fired by engine::Drive and
/// Session::IngestSome after every batch handed to the backend, carrying
/// the batch's wall time — the seam the per-decision latency profiler
/// (engine::LatencyObserver) hangs off. Timing-dependent by nature, so
/// like ProgressEvent it is reporting-only: never part of partition state,
/// never diffed by benches.
struct BatchEvent {
  /// Stream elements in the batch (>= 1).
  uint64_t edges = 0;
  /// Wall time the IngestBatch call took, nanoseconds.
  uint64_t ns = 0;
};

/// End-of-drive backend counters, fired once after Finalize. This is how
/// backend-specific numbers (Loom's match-pool reuse, matcher totals)
/// reach reports without backend-specific getters: each backend fills a
/// flat name -> value map (Partitioner::FillFinalStats) and consumers read
/// the keys they know. Only deterministic counters belong here — values
/// must be identical across reruns on fixed seeds, because benches diff
/// them (timing-dependent numbers ride ProgressEvent instead).
/// The flat counter map final stats travel as (name -> value, in a
/// backend-chosen stable order).
using StatCounters = std::vector<std::pair<std::string, uint64_t>>;

/// The named counter, or `fallback` when absent. The one lookup shared by
/// FinalStatsEvent::Get, RunReport::Stat and eval's SystemResult.
inline uint64_t FindCounter(const StatCounters& counters,
                            std::string_view name, uint64_t fallback = 0) {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return fallback;
}

struct FinalStatsEvent {
  /// Counters in a backend-chosen, stable order. Empty for backends with
  /// nothing to report (hash/ldg/fennel).
  StatCounters counters;

  /// The named counter, or `fallback` when the backend did not report it.
  uint64_t Get(std::string_view name, uint64_t fallback = 0) const {
    return FindCounter(counters, name, fallback);
  }
};

/// Subscriber interface. Default implementations ignore every event, so
/// observers override only what they need.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void OnAssign(const AssignEvent&) {}
  virtual void OnEdgeAssign(const EdgeAssignEvent&) {}
  virtual void OnEviction(const EvictionEvent&) {}
  virtual void OnClusterDecision(const ClusterDecisionEvent&) {}
  virtual void OnProgress(const ProgressEvent&) {}
  virtual void OnBatch(const BatchEvent&) {}
  virtual void OnFinalStats(const FinalStatsEvent&) {}
};

/// Ready-made accumulator: counts every event category and keeps the last
/// progress snapshot. What RunComparison and the examples subscribe instead
/// of reaching into backend-specific getters.
class StatsObserver : public EngineObserver {
 public:
  struct Totals {
    uint64_t vertices_assigned = 0;
    uint64_t evictions = 0;
    uint64_t empty_cluster_evictions = 0;  // evictee had no live matches
    uint64_t cluster_decisions = 0;
    uint64_t fallback_decisions = 0;
    uint64_t cluster_edges_assigned = 0;
    ProgressEvent last_progress;
  };

  void OnAssign(const AssignEvent&) override { ++totals_.vertices_assigned; }
  void OnEviction(const EvictionEvent& e) override {
    ++totals_.evictions;
    if (e.cluster_size == 0) ++totals_.empty_cluster_evictions;
  }
  void OnClusterDecision(const ClusterDecisionEvent& e) override {
    ++totals_.cluster_decisions;
    if (e.used_fallback) ++totals_.fallback_decisions;
    totals_.cluster_edges_assigned += e.edges_assigned;
  }
  void OnProgress(const ProgressEvent& e) override {
    totals_.last_progress = e;
  }
  void OnFinalStats(const FinalStatsEvent& e) override { final_stats_ = e; }

  const Totals& totals() const { return totals_; }

  /// Overwrites the accumulated totals (checkpoint restore: the resumed
  /// session must report lifetime totals as if never interrupted).
  void RestoreTotals(const Totals& totals) { totals_ = totals; }

  /// The last final-stats event (empty until a drive finalizes).
  const FinalStatsEvent& final_stats() const { return final_stats_; }

 private:
  Totals totals_;
  FinalStatsEvent final_stats_;
};

}  // namespace engine
}  // namespace loom

#endif  // LOOM_ENGINE_OBSERVER_H_
