#include "partition/edge/split_merge.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <charconv>
#include <fstream>
#include <limits>

#include "util/dense_bitset.h"
#include "util/string_util.h"

namespace loom {
namespace partition {
namespace edge {

namespace {

bool ParseU32Field(const std::string& s, uint32_t* out) {
  uint32_t v = 0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) return false;
  *out = v;
  return true;
}

}  // namespace

bool LoadEdgeAssignments(const std::string& path,
                         std::vector<EdgeAssignmentRecord>* records,
                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open edge assignment file: " + path;
    return false;
  }
  records->clear();
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = util::Split(line, '\t');
    EdgeAssignmentRecord rec;
    if (fields.size() != 3 || !ParseU32Field(fields[0], &rec.u) ||
        !ParseU32Field(fields[1], &rec.v) ||
        !ParseU32Field(fields[2], &rec.partition)) {
      *error = path + ":" + std::to_string(line_no) +
               ": expected \"<u>\\t<v>\\t<partition>\" (the --edge-out "
               "format), got \"" +
               line + "\"";
      return false;
    }
    records->push_back(rec);
  }
  if (records->empty()) {
    *error = "edge assignment file is empty: " + path;
    return false;
  }
  return true;
}

EdgeQuality EvaluateMerged(const std::vector<EdgeAssignmentRecord>& records,
                           const std::vector<graph::PartitionId>& atom_to_part,
                           uint32_t k_out) {
  EdgeQuality q;
  if (records.empty() || k_out == 0) return q;
  const uint32_t words = (k_out + 63) / 64;
  std::vector<uint64_t> replicas;  // slots x words, grown on demand
  std::vector<uint64_t> loads(k_out, 0);
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  uint64_t replica_total = 0;
  uint64_t vertices_seen = 0;

  auto add_replica = [&](graph::VertexId v, graph::PartitionId p) {
    const size_t need = (static_cast<size_t>(v) + 1) * words;
    if (replicas.size() < need) replicas.resize(need, 0);
    const size_t base = static_cast<size_t>(v) * words;
    uint64_t& word = replicas[base + p / 64];
    const uint64_t bit = 1ULL << (p % 64);
    if ((word & bit) != 0) return;
    bool had_any = false;
    for (uint32_t w = 0; w < words && !had_any; ++w) {
      had_any = replicas[base + w] != 0;
    }
    word |= bit;
    ++replica_total;
    if (!had_any) ++vertices_seen;
  };

  for (const EdgeAssignmentRecord& rec : records) {
    graph::PartitionId p = 0;
    if (rec.partition < atom_to_part.size()) {
      p = atom_to_part[rec.partition];
    } else {
      assert(false && "record partition outside the atom mapping");
    }
    if (p >= k_out) {
      assert(false && "atom mapped outside [0, k_out)");
      p = 0;
    }
    add_replica(rec.u, p);
    if (rec.v != rec.u) add_replica(rec.v, p);
    ++loads[p];
    hash = (hash ^ p) * 0x100000001b3ULL;  // same FNV-1a as the live backends
  }

  const uint64_t max_load = *std::max_element(loads.begin(), loads.end());
  q.replication_factor =
      vertices_seen > 0 ? static_cast<double>(replica_total) / vertices_seen
                        : 0.0;
  q.edge_balance = static_cast<double>(max_load) * k_out / records.size();
  q.edge_assignment_hash = hash;
  return q;
}

std::vector<graph::PartitionId> NaiveModuloMerge(uint32_t input_parts,
                                                 uint32_t target_k) {
  std::vector<graph::PartitionId> map(input_parts, 0);
  for (uint32_t i = 0; i < input_parts; ++i) map[i] = i % target_k;
  return map;
}

bool SplitMerge(const std::vector<EdgeAssignmentRecord>& records,
                const SplitMergeOptions& options, SplitMergeResult* result,
                std::string* error) {
  if (records.empty()) {
    *error = "split-merge needs a non-empty edge assignment";
    return false;
  }
  uint32_t k_in = 0;
  for (const EdgeAssignmentRecord& rec : records) {
    k_in = std::max(k_in, rec.partition + 1);
  }
  if (options.target_k == 0 || options.target_k > k_in) {
    *error = "--rebalance-to=" + std::to_string(options.target_k) +
             " must be in [1, " + std::to_string(k_in) +
             "] (the input assignment has " + std::to_string(k_in) +
             " parts; split-merge only merges, it never splits)";
    return false;
  }

  // Per-atom load and vertex set. Atoms are the k' input parts.
  std::vector<uint64_t> load(k_in, 0);
  std::vector<util::DenseBitset> verts(k_in);
  for (const EdgeAssignmentRecord& rec : records) {
    ++load[rec.partition];
    verts[rec.partition].Set(rec.u);
    verts[rec.partition].Set(rec.v);
  }

  const double cap = options.balance_cap *
                     static_cast<double>(records.size()) / options.target_k;

  // Greedy pairwise merge. alive[] tracks current representatives; parent[]
  // resolves every original atom to its representative at the end. Pair
  // choice is pinned: max vertex overlap, then smaller combined load, then
  // lower (a, b) — same records + options always yield the same mapping.
  std::vector<bool> alive(k_in, true);
  std::vector<uint32_t> parent(k_in);
  for (uint32_t i = 0; i < k_in; ++i) parent[i] = i;
  uint32_t remaining = k_in;

  while (remaining > options.target_k) {
    uint32_t best_a = k_in, best_b = k_in;
    uint64_t best_overlap = 0;
    uint64_t best_load = std::numeric_limits<uint64_t>::max();
    bool found = false;
    for (uint32_t a = 0; a < k_in; ++a) {
      if (!alive[a]) continue;
      for (uint32_t b = a + 1; b < k_in; ++b) {
        if (!alive[b]) continue;
        const uint64_t combined = load[a] + load[b];
        if (static_cast<double>(combined) > cap) continue;  // violates cap
        const uint64_t overlap = verts[a].CountAnd(verts[b]);
        if (!found || overlap > best_overlap ||
            (overlap == best_overlap && combined < best_load)) {
          best_a = a;
          best_b = b;
          best_overlap = overlap;
          best_load = combined;
          found = true;
        }
      }
    }
    if (!found) {
      *error = "no pair of parts can merge without exceeding the balance cap "
               "(cap=" +
               std::to_string(options.balance_cap) + " allows at most " +
               std::to_string(static_cast<uint64_t>(cap)) +
               " edges/part at target_k=" + std::to_string(options.target_k) +
               "); raise --balance-cap or lower --rebalance-to less "
               "aggressively";
      return false;
    }
    // Fold b into a (a < b by construction).
    load[best_a] += load[best_b];
    verts[best_a].OrWith(verts[best_b]);
    verts[best_b] = util::DenseBitset();  // release the absorbed set
    alive[best_b] = false;
    parent[best_b] = best_a;
    --remaining;
  }

  // Renumber surviving atoms by ascending original id -> dense [0, target_k).
  std::vector<graph::PartitionId> rep_part(k_in, 0);
  graph::PartitionId next = 0;
  for (uint32_t i = 0; i < k_in; ++i) {
    if (alive[i]) rep_part[i] = next++;
  }
  assert(next == options.target_k);
  result->input_parts = k_in;
  result->atom_to_part.assign(k_in, 0);
  for (uint32_t i = 0; i < k_in; ++i) {
    uint32_t root = i;
    while (parent[root] != root) root = parent[root];
    result->atom_to_part[i] = rep_part[root];
  }

  // Identity mapping over k_in parts == the input file's own triple.
  std::vector<graph::PartitionId> identity(k_in);
  for (uint32_t i = 0; i < k_in; ++i) identity[i] = i;
  result->input_quality = EvaluateMerged(records, identity, k_in);
  result->quality =
      EvaluateMerged(records, result->atom_to_part, options.target_k);
  return true;
}

}  // namespace edge
}  // namespace partition
}  // namespace loom
