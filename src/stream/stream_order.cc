#include "stream/stream_order.h"

#include "graph/graph_algos.h"
#include "util/rng.h"

namespace loom {
namespace stream {

std::string ToString(StreamOrder order) {
  switch (order) {
    case StreamOrder::kBreadthFirst: return "bfs";
    case StreamOrder::kDepthFirst: return "dfs";
    case StreamOrder::kRandom: return "random";
  }
  return "?";
}

std::vector<graph::EdgeId> EdgeOrderFor(const graph::LabeledGraph& g,
                                        StreamOrder order, uint64_t seed) {
  switch (order) {
    case StreamOrder::kBreadthFirst:
      return graph::BfsEdgeOrder(g);
    case StreamOrder::kDepthFirst:
      return graph::DfsEdgeOrder(g);
    case StreamOrder::kRandom: {
      util::Rng rng(seed);
      return graph::RandomEdgeOrder(g, &rng);
    }
  }
  return {};
}

EdgeStream MakeStream(const graph::LabeledGraph& g, StreamOrder order,
                      uint64_t seed) {
  return EdgeStream(g, EdgeOrderFor(g, order, seed));
}

}  // namespace stream
}  // namespace loom
