#include "motif/match_list.h"

#include <gtest/gtest.h>

namespace loom {
namespace motif {
namespace {

MatchPtr MakeMatch(std::vector<graph::EdgeId> edges,
                   std::vector<graph::VertexId> vertices, uint32_t node) {
  auto m = std::make_shared<Match>();
  m->edges = std::move(edges);
  m->vertices = std::move(vertices);
  m->node_id = node;
  return m;
}

TEST(MatchTest, ContainsChecks) {
  auto m = MakeMatch({2, 5, 9}, {1, 3}, 7);
  EXPECT_TRUE(m->ContainsEdge(5));
  EXPECT_FALSE(m->ContainsEdge(4));
  EXPECT_TRUE(m->ContainsVertex(3));
  EXPECT_FALSE(m->ContainsVertex(2));
}

TEST(MatchTest, KeyIsContentBased) {
  auto a = MakeMatch({1, 2}, {0, 1, 2}, 3);
  auto b = MakeMatch({1, 2}, {0, 1, 2}, 3);
  auto c = MakeMatch({1, 2}, {0, 1, 2}, 4);  // different motif
  auto d = MakeMatch({1, 3}, {0, 1, 2}, 3);  // different edges
  EXPECT_EQ(a->Key(), b->Key());
  EXPECT_NE(a->Key(), c->Key());
  EXPECT_NE(a->Key(), d->Key());
}

TEST(MatchListTest, AddAndLookup) {
  MatchList ml;
  auto m = MakeMatch({0}, {10, 11}, 1);
  EXPECT_TRUE(ml.Add(m));
  EXPECT_EQ(ml.NumLive(), 1u);
  EXPECT_EQ(ml.LiveAt(10).size(), 1u);
  EXPECT_EQ(ml.LiveAt(11).size(), 1u);
  EXPECT_EQ(ml.LiveAt(12).size(), 0u);
  EXPECT_EQ(ml.LiveWithEdge(0).size(), 1u);
  EXPECT_EQ(ml.LiveWithEdge(1).size(), 0u);
  EXPECT_TRUE(ml.HasLiveAt(10));
  EXPECT_FALSE(ml.HasLiveAt(12));
}

TEST(MatchListTest, DuplicateRejected) {
  MatchList ml;
  EXPECT_TRUE(ml.Add(MakeMatch({0, 1}, {5, 6, 7}, 2)));
  EXPECT_FALSE(ml.Add(MakeMatch({0, 1}, {5, 6, 7}, 2)));
  EXPECT_EQ(ml.NumLive(), 1u);
  EXPECT_EQ(ml.TotalAdded(), 1u);
}

TEST(MatchListTest, SameEdgesDifferentMotifCoexist) {
  MatchList ml;
  EXPECT_TRUE(ml.Add(MakeMatch({0, 1}, {5, 6, 7}, 2)));
  EXPECT_TRUE(ml.Add(MakeMatch({0, 1}, {5, 6, 7}, 3)));
  EXPECT_EQ(ml.NumLive(), 2u);
}

TEST(MatchListTest, RemoveMatchesWithEdgeKillsAllContaining) {
  MatchList ml;
  auto m1 = MakeMatch({0}, {5, 6}, 1);
  auto m2 = MakeMatch({0, 1}, {5, 6, 7}, 2);
  auto m3 = MakeMatch({1}, {6, 7}, 1);
  ml.Add(m1);
  ml.Add(m2);
  ml.Add(m3);
  ml.RemoveMatchesWithEdge(0);
  EXPECT_FALSE(m1->alive);
  EXPECT_FALSE(m2->alive);
  EXPECT_TRUE(m3->alive);
  EXPECT_EQ(ml.NumLive(), 1u);
  EXPECT_EQ(ml.LiveAt(5).size(), 0u);
  EXPECT_EQ(ml.LiveAt(6).size(), 1u);
  EXPECT_EQ(ml.LiveWithEdge(1).size(), 1u);
}

TEST(MatchListTest, DeadMatchCanBeReAdded) {
  MatchList ml;
  ml.Add(MakeMatch({0}, {5, 6}, 1));
  ml.RemoveMatchesWithEdge(0);
  // Same content is allowed again once the original died.
  EXPECT_TRUE(ml.Add(MakeMatch({0}, {5, 6}, 1)));
  EXPECT_EQ(ml.NumLive(), 1u);
}

TEST(MatchListTest, CompactPurgesDeadEntries) {
  MatchList ml;
  for (graph::EdgeId e = 0; e < 10; ++e) {
    ml.Add(MakeMatch({e}, {e * 2, e * 2 + 1}, 1));
  }
  for (graph::EdgeId e = 0; e < 5; ++e) ml.RemoveMatchesWithEdge(e);
  ml.Compact();
  EXPECT_EQ(ml.NumLive(), 5u);
  for (graph::EdgeId e = 0; e < 5; ++e) {
    EXPECT_TRUE(ml.LiveAt(e * 2).empty());
  }
  for (graph::EdgeId e = 5; e < 10; ++e) {
    EXPECT_EQ(ml.LiveAt(e * 2).size(), 1u);
  }
}

TEST(MatchListTest, RemoveUnknownEdgeIsNoop) {
  MatchList ml;
  ml.Add(MakeMatch({3}, {0, 1}, 1));
  ml.RemoveMatchesWithEdge(99);
  EXPECT_EQ(ml.NumLive(), 1u);
}

}  // namespace
}  // namespace motif
}  // namespace loom
