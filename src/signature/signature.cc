#include "signature/signature.h"

#include <algorithm>
#include <sstream>

#include "util/simd.h"

namespace loom {
namespace signature {

Signature::Signature(std::vector<Factor> factors) : factors_(std::move(factors)) {
  std::sort(factors_.begin(), factors_.end());
}

void Signature::Add(Factor f) {
  factors_.insert(std::upper_bound(factors_.begin(), factors_.end(), f), f);
}

void Signature::AddAll(const FactorDelta& delta) {
  for (Factor f : delta) Add(f);
}

Signature Signature::Extended(const FactorDelta& delta) const {
  Signature out = *this;
  out.AddAll(delta);
  return out;
}

std::optional<FactorDelta> Signature::DifferenceTo(const Signature& other) const {
  if (other.size() < size()) return std::nullopt;
  FactorDelta diff;
  diff.reserve(other.size() - size());
  size_t i = 0;
  for (Factor f : other.factors_) {
    if (i < factors_.size() && factors_[i] == f) {
      ++i;  // matched one of ours
    } else if (i < factors_.size() && factors_[i] < f) {
      return std::nullopt;  // we hold a factor `other` lacks
    } else {
      diff.push_back(f);
    }
  }
  if (i != factors_.size()) return std::nullopt;
  return diff;
}

bool Signature::ExtendsBy(const FactorDelta& delta, const Signature& other) const {
  if (other.size() != size() + delta.size()) return false;
  // other must be exactly this ∪ delta (as multisets); the kernel's scalar
  // level is the original merge-compare walk, the SIMD levels locate delta's
  // insertion points and compare the segments between them vector-wide.
  FactorDelta sorted_delta = delta;
  std::sort(sorted_delta.begin(), sorted_delta.end());
  return ExtendsBySorted(sorted_delta, other);
}

bool Signature::ExtendsBySorted(const FactorDelta& sorted_delta,
                                const Signature& other) const {
  return util::simd::MultisetExtendsU32(
      factors_.data(), factors_.size(), sorted_delta.data(),
      sorted_delta.size(), other.factors_.data(), other.factors_.size());
}

uint64_t Signature::Hash() const {
  // FNV-1a over the sorted factor sequence: order-independent because the
  // representation is canonical (sorted).
  uint64_t h = 0xcbf29ce484222325ULL;
  for (Factor f : factors_) {
    h ^= f;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string Signature::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < factors_.size(); ++i) {
    if (i) os << ",";
    os << factors_[i];
  }
  os << "}";
  return os.str();
}

}  // namespace signature
}  // namespace loom
