// The unit of an online graph: one labelled edge in arrival order.
//
// The paper (Sec. 1.3) views an online graph as a possibly-infinite sequence
// of edge additions. Each stream element carries its endpoint labels so a
// streaming partitioner never needs global graph state to interpret it.

#ifndef LOOM_STREAM_STREAM_EDGE_H_
#define LOOM_STREAM_STREAM_EDGE_H_

#include "graph/types.h"

namespace loom {
namespace stream {

/// One arriving edge. `id` is the position in the stream (unique, dense,
/// monotonically increasing) and doubles as the edge's identity inside the
/// sliding window and matchList.
struct StreamEdge {
  graph::EdgeId id = graph::kInvalidEdge;
  graph::VertexId u = graph::kInvalidVertex;
  graph::VertexId v = graph::kInvalidVertex;
  graph::LabelId label_u = graph::kInvalidLabel;
  graph::LabelId label_v = graph::kInvalidLabel;

  /// The endpoint that is not `w`. Requires w to be an endpoint.
  graph::VertexId Other(graph::VertexId w) const { return w == u ? v : u; }

  /// Label of endpoint `w`. Requires w to be an endpoint.
  graph::LabelId LabelOf(graph::VertexId w) const {
    return w == u ? label_u : label_v;
  }

  bool Incident(graph::VertexId w) const { return w == u || w == v; }
};

}  // namespace stream
}  // namespace loom

#endif  // LOOM_STREAM_STREAM_EDGE_H_
