// Micro-benchmarks for the util::simd hot-loop kernels: ns/op per kernel at
// each dispatch level this CPU supports, over the shapes the streaming path
// actually sees (small neighbour spans vs hub spans, paper-k bid tables,
// motif-sized multisets). The compact scalar-vs-dispatched summary that
// rides BENCH_throughput.json is produced by table2_throughput ("
// simd_kernels" section); this binary is the detailed interactive view.
//
//   build/micro_kernels --benchmark_min_time=0.1
//
// Levels are forced via util::simd::SetActiveLevel per benchmark — the
// kernels are bit-identical across levels, so the numbers are directly
// comparable (and the differential suites enforce the identity).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "util/rng.h"
#include "util/simd.h"

namespace {

using namespace loom;
using util::simd::Level;

/// Registers a benchmark variant per supported level; `level` comes in via
/// the first range argument (index into SupportedLevels()).
Level LevelArg(const benchmark::State& state) {
  return util::simd::SupportedLevels()[static_cast<size_t>(state.range(0))];
}

void ApplyLevelCounters(benchmark::State& state) {
  state.SetLabel(util::simd::LevelName(LevelArg(state)));
}

void LevelArgs(benchmark::internal::Benchmark* b) {
  const size_t levels = util::simd::SupportedLevels().size();
  for (size_t i = 0; i < levels; ++i) {
    b->Arg(static_cast<int64_t>(i));
  }
}

// ------------------------------------------------------------- tallies

/// The LDG/Eq. 1 neighbour tally: gather partitions of a span, count per
/// partition. n = 8 is a typical vertex, n = 512 a hub. Input shapes come
/// from the fixture shared with table2_throughput's `simd_kernels` JSON
/// section, so the two stay comparable.
const loom::bench::SimdKernelFixture& Fixture() {
  static const loom::bench::SimdKernelFixture fx;
  return fx;
}

template <size_t kN>
void BM_TallyGather(benchmark::State& state) {
  const Level level = LevelArg(state);
  const auto& fx = Fixture();
  static_assert(kN <= 4096);
  uint32_t counts[loom::bench::SimdKernelFixture::kK];
  for (auto _ : state) {
    std::memset(counts, 0, sizeof(counts));
    util::simd::TallyGatherU32(level, fx.table.data(), fx.table.size(),
                               fx.idx.data(), kN,
                               loom::bench::SimdKernelFixture::kK, counts);
    benchmark::DoNotOptimize(counts[3]);
  }
  ApplyLevelCounters(state);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kN));
}
BENCHMARK(BM_TallyGather<8>)->Apply(LevelArgs);
BENCHMARK(BM_TallyGather<64>)->Apply(LevelArgs);
BENCHMARK(BM_TallyGather<512>)->Apply(LevelArgs);

// ---------------------------------------------------------- bid totals

/// Eq. 3 totals across k = 8 partitions for a 24-match cluster (fixture
/// shared with the `simd_kernels` JSON section).
void BM_BidTotals(benchmark::State& state) {
  const Level level = LevelArg(state);
  const auto& fx = Fixture();
  double totals[loom::bench::SimdKernelFixture::kK];
  for (auto _ : state) {
    util::simd::BidTotals(level, fx.overlap.data(),
                          loom::bench::SimdKernelFixture::kRows,
                          loom::bench::SimdKernelFixture::kK, fx.residual,
                          fx.support, fx.count, totals);
    benchmark::DoNotOptimize(totals[2]);
  }
  ApplyLevelCounters(state);
}
BENCHMARK(BM_BidTotals)->Apply(LevelArgs);

// ------------------------------------------------------------ residues

/// The per-attempt factor triple (matcher extend/join hot path).
void BM_EdgeAdditionFactors(benchmark::State& state) {
  const Level level = LevelArg(state);
  uint32_t out[3];
  uint32_t va = 1;
  for (auto _ : state) {
    util::simd::EdgeAdditionFactors(level, va, 17, 33, 3, 91, 2, 251, out);
    benchmark::DoNotOptimize(out[0]);
    va = va % 249 + 1;
  }
  ApplyLevelCounters(state);
}
BENCHMARK(BM_EdgeAdditionFactors)->Apply(LevelArgs);

/// Batched edge-factor residues (trie construction / full signatures).
void BM_ResidueDiffBatch(benchmark::State& state) {
  const Level level = LevelArg(state);
  util::Rng rng(0x0D1F);
  constexpr size_t kN = 64;
  uint16_t a[kN], b[kN], out[kN];
  for (size_t i = 0; i < kN; ++i) {
    a[i] = static_cast<uint16_t>(rng.Uniform(251));
    b[i] = static_cast<uint16_t>(rng.Uniform(251));
  }
  for (auto _ : state) {
    util::simd::ResidueDiffU16(level, a, b, kN, 251, out);
    benchmark::DoNotOptimize(out[7]);
  }
  ApplyLevelCounters(state);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kN));
}
BENCHMARK(BM_ResidueDiffBatch)->Apply(LevelArgs);

// ------------------------------------------------------------ multisets

/// Alg. 2's membership test at motif scale (n = 12 factors, 3-factor
/// delta) and at the segmented-formulation scale (n = 48).
template <size_t kBase>
void BM_MultisetExtends(benchmark::State& state) {
  const Level level = LevelArg(state);
  util::Rng rng(0x5E7);
  std::vector<uint32_t> base(kBase), delta = {17, 60, 131};
  for (auto& x : base) x = static_cast<uint32_t>(1 + rng.Uniform(250));
  std::sort(base.begin(), base.end());
  std::vector<uint32_t> grown;
  grown.insert(grown.end(), base.begin(), base.end());
  grown.insert(grown.end(), delta.begin(), delta.end());
  std::sort(grown.begin(), grown.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::simd::MultisetExtendsU32(
        level, base.data(), base.size(), delta.data(), delta.size(),
        grown.data(), grown.size()));
  }
  ApplyLevelCounters(state);
}
BENCHMARK(BM_MultisetExtends<12>)->Apply(LevelArgs);
BENCHMARK(BM_MultisetExtends<48>)->Apply(LevelArgs);

/// The join preamble: remaining = smaller.edges \ base.edges at match
/// sizes (both sorted, <= kMaxQueryEdges entries).
void BM_SortedDifference(benchmark::State& state) {
  const Level level = LevelArg(state);
  std::vector<uint32_t> haystack = {2, 5, 9, 14, 17, 23, 31, 40};
  std::vector<uint32_t> needles = {5, 11, 17, 35};
  uint32_t out[8];
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::simd::SortedDifferenceU32(
        level, needles.data(), needles.size(), haystack.data(),
        haystack.size(), out));
  }
  ApplyLevelCounters(state);
}
BENCHMARK(BM_SortedDifference)->Apply(LevelArgs);

}  // namespace
