#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace loom {
namespace serve {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::Connect(const std::string& socket_path, std::string* error) {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket() failed: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "cannot connect to " + socket_path + ": " + std::strerror(errno);
    Close();
    return false;
  }
  return true;
}

bool Client::SendLine(std::string_view line, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  std::string framed(line);
  framed.push_back('\n');
  std::string_view bytes = framed;
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      *error = std::string("send failed: ") + std::strerror(errno);
      return false;
    }
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

bool Client::ReadReply(std::string* reply, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  for (;;) {
    const LineFramer::Result res = framer_.Next(reply);
    if (res == LineFramer::Result::kLine) return true;
    if (res == LineFramer::Result::kOversize) {
      *error = "oversize reply line from server";
      return false;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      *error = n == 0 ? "server closed the connection"
                      : std::string("recv failed: ") + std::strerror(errno);
      return false;
    }
    framer_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

bool Client::Roundtrip(std::string_view line, std::string* reply,
                       std::string* error) {
  return SendLine(line, error) && ReadReply(reply, error);
}

}  // namespace serve
}  // namespace loom
