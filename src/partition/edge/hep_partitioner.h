// HEP — a hybrid edge partitioner in the style of Mayer et al.'s
// "Hybrid Edge Partitioner" (the headline in-memory/streaming hybrid of
// the split-merge-partitioner zoo; see ROADMAP item 2 and SNIPPETS.md
// Snippet 1): split the vertex set at a degree threshold, keep the
// low-degree CORE's adjacency in memory and place its edges by
// neighborhood expansion, and stream every edge touching a high-degree
// vertex through the classic HDRF scoring rule.
//
// Streaming adaptation (the source algorithm makes two passes; a stream
// gets one):
//
//   * The split is ONLINE and monotone: a vertex is promoted to
//     high-degree the first time its partial degree exceeds
//     threshold_factor x the running mean partial degree
//     (2·edges / distinct vertices, this edge included). Promotion frees
//     the vertex's in-memory adjacency and is permanent, so core memory is
//     bounded by n x threshold even on the larger-than-RAM
//     io::FileEdgeSource path — exactly the property HEP exists for.
//   * Core edges (both endpoints low-degree) score each part by
//     neighborhood expansion: the HDRF replica term for the endpoints
//     plus kNeighborWeight per in-memory neighbor already replicated in
//     the part — placing an edge where its neighborhood already lives is
//     what beats degree-blind HDRF on replication factor. A hard
//     capacity of max_imbalance x (edges+1)/k filters the candidates
//     (the min-loaded part always qualifies for max_imbalance > 1, so
//     the filter can never empty); ties break like HDRF (smaller load,
//     then lower id).
//   * Edges with a high-degree endpoint fall back to the shared
//     EdgePartitioner::HdrfGreedyPick — bit-identical to the "hdrf"
//     backend's rule — under the same hard capacity.
//
// Determinism contract: same as every edge backend (placements depend only
// on the edge sequence), pinned by tests/edge_partition_test.cc and the
// crash-recovery kill-point matrix. All hybrid state (promotion bitset,
// core adjacency, distinct-vertex counter, knob fingerprints) rides the
// checkpoint through SaveExtra/RestoreExtra.

#ifndef LOOM_PARTITION_EDGE_HEP_PARTITIONER_H_
#define LOOM_PARTITION_EDGE_HEP_PARTITIONER_H_

#include <vector>

#include "partition/edge/edge_partitioner.h"
#include "util/dense_bitset.h"

namespace loom {
namespace partition {
namespace edge {

class HepPartitioner final : public EdgePartitioner {
 public:
  /// `threshold_factor` > 0 scales the high/low-degree split point;
  /// `lambda`/`epsilon` parameterise the HDRF fallback exactly as in
  /// HdrfPartitioner. (Engine spec: "hep:threshold_factor=4,lambda=1.1".)
  HepPartitioner(const PartitionerConfig& config, double threshold_factor,
                 double lambda, double epsilon);

  std::string name() const override { return "hep"; }

  double threshold_factor() const { return threshold_factor_; }

  /// Vertices promoted to the high-degree (streamed) side so far.
  uint64_t HighDegreeCount() const { return high_degree_.Count(); }

  /// Adds hep's split counters (high_degree_vertices, core_edges,
  /// fallback_edges) to the shared edge counters.
  void FillFinalStats(engine::FinalStatsEvent* stats) const override;

 protected:
  graph::PartitionId PlaceEdge(const stream::StreamEdge& e) override;

  void SaveExtra(io::CheckpointWriter* w) const override;
  bool RestoreExtra(io::CheckpointReader* r, std::string* error) override;

 private:
  /// Promotes v when its partial degree crosses `threshold`, freeing its
  /// core adjacency. Monotone: a promoted vertex never returns to the core.
  void MaybePromote(graph::VertexId v, double threshold);

  /// Records n as an in-memory neighbor of the (low-degree) vertex v.
  void AppendCoreAdjacency(graph::VertexId v, graph::VertexId n);

  /// Neighborhood-expansion pick for a core edge, under `capacity`.
  graph::PartitionId ExpandCore(const stream::StreamEdge& e, double capacity);

  const double threshold_factor_;
  const double lambda_;    // HDRF fallback balance weight
  const double epsilon_;   // HDRF fallback denominator guard
  const double capacity_factor_;  // hard edge-balance cap (max_imbalance)

  util::DenseBitset high_degree_;  // monotone promotion flags
  /// In-memory adjacency of the low-degree core; entry v is freed (and
  /// stays empty) once v is promoted.
  std::vector<std::vector<graph::VertexId>> core_adj_;
  uint64_t touched_ = 0;         // distinct vertices seen (mean's divisor)
  uint64_t core_edges_ = 0;      // edges placed by neighborhood expansion
  uint64_t fallback_edges_ = 0;  // edges placed by the HDRF fallback

  std::vector<uint32_t> nbr_scratch_;  // per-part neighbor counts (size k)
};

}  // namespace edge
}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_EDGE_HEP_PARTITIONER_H_
