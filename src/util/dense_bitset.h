// util::DenseBitset — a growable bitset over 64-bit words.
//
// The HEP-style edge partitioner (partition/edge/hep_partitioner.h) and the
// split-merge rebalance pass track per-vertex membership sets (core /
// high-degree flags, per-atom vertex sets) over dense vertex ids — the
// dense_bitset idiom from the split-merge-partitioner codebase (SNIPPETS.md
// Snippet 1). std::vector<bool> hides its word layout, which both the
// popcount-heavy overlap scoring and the checkpoint path need, so this
// class exposes its words directly: PodVec(words()) serialises it, and
// intersection counts are one AND+popcount per word.
//
// Test(i) beyond the current size is false (never a read out of bounds),
// Set(i) grows as needed — mirroring EdgePartitioner's lazy vertex tables.

#ifndef LOOM_UTIL_DENSE_BITSET_H_
#define LOOM_UTIL_DENSE_BITSET_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace loom {
namespace util {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t bits) : words_((bits + 63) / 64, 0) {}

  /// True if bit `i` is set; false for any i past the grown extent.
  bool Test(size_t i) const {
    const size_t w = i / 64;
    return w < words_.size() && ((words_[w] >> (i % 64)) & 1ULL) != 0;
  }

  /// Sets bit `i`, growing the word array to cover it.
  void Set(size_t i) {
    const size_t w = i / 64;
    if (w >= words_.size()) words_.resize(w + 1, 0);
    words_[w] |= 1ULL << (i % 64);
  }

  /// Clears bit `i` (no-op past the grown extent).
  void Clear(size_t i) {
    const size_t w = i / 64;
    if (w < words_.size()) words_[w] &= ~(1ULL << (i % 64));
  }

  /// Number of set bits.
  uint64_t Count() const {
    uint64_t n = 0;
    for (const uint64_t w : words_) n += std::popcount(w);
    return n;
  }

  /// |this AND other| — the overlap the merge scorer maximises.
  uint64_t CountAnd(const DenseBitset& other) const {
    const size_t n = std::min(words_.size(), other.words_.size());
    uint64_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      count += std::popcount(words_[i] & other.words_[i]);
    }
    return count;
  }

  /// this |= other (grows to cover the union).
  void OrWith(const DenseBitset& other) {
    if (other.words_.size() > words_.size()) {
      words_.resize(other.words_.size(), 0);
    }
    for (size_t i = 0; i < other.words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

  /// The backing words, for checkpointing (PodVec) and word-wise kernels.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Replaces the backing words (the checkpoint restore path).
  void SetWords(std::vector<uint64_t> words) { words_ = std::move(words); }

  bool Empty() const {
    return std::all_of(words_.begin(), words_.end(),
                       [](uint64_t w) { return w == 0; });
  }

 private:
  std::vector<uint64_t> words_;
};

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_DENSE_BITSET_H_
