// Synthetic ProvGen-like PROV provenance graph (3 labels).
//
// ProvGen [6] generates wiki-page provenance: chains of page revisions.
// Model: each page is a chain entity_0 <- activity_1 <- entity_1 <- ... where
// each Activity (a revision) uses the previous Entity version and generates
// the next, and is associated with an Agent (the editor, Zipf-skewed — a few
// very active editors). Occasional branches model content reuse across
// pages.

#ifndef LOOM_DATASETS_PROVGEN_GENERATOR_H_
#define LOOM_DATASETS_PROVGEN_GENERATOR_H_

#include <cstdint>

#include "datasets/graph_sink.h"
#include "datasets/schema.h"

namespace loom {
namespace datasets {

struct ProvGenConfig {
  /// Number of wiki pages (revision chains).
  size_t num_pages = 2500;
  /// Mean revisions per page (chain length is 1 + Zipf-ish noise).
  size_t mean_revisions = 5;
  uint64_t seed = 0x960c;
};

Dataset GenerateProvGen(const ProvGenConfig& config);

/// Emit-only path (see graph_sink.h): same walk, no materialised graph.
void EmitProvGen(const ProvGenConfig& config, graph::LabelRegistry* registry,
                 GraphSink* sink);

}  // namespace datasets
}  // namespace loom

#endif  // LOOM_DATASETS_PROVGEN_GENERATOR_H_
