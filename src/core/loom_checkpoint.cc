#include "core/loom_checkpoint.h"

#include <cassert>
#include <cstring>
#include <string>

namespace loom {
namespace core {

namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return bits;
}

/// FNV-1a over the trie's structure-relevant numbers: node count, per-node
/// (support bits, num_edges), threshold and normalising total. Two runs with
/// the same workload and options produce identical tries, so any difference
/// here means the resumed process was handed a drifted workload — its
/// admission/allocation decisions would silently diverge from the
/// checkpointed run's.
uint64_t TrieFingerprint(const tpstry::Tpstry& trie) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
  };
  mix(trie.NumNodes());
  mix(Bits(trie.support_threshold()));
  mix(Bits(trie.total_frequency()));
  for (uint32_t id = 0; id < trie.NumNodes(); ++id) {
    const tpstry::TpsNode& n = trie.node(id);
    mix(Bits(n.support));
    mix(n.num_edges);
  }
  return h;
}

/// The decision-steering knobs, in one fixed order. Save writes each value;
/// restore reads and compares, naming the first knob that differs. Doubles
/// travel and compare as bit patterns — a fingerprint match means the
/// resumed process computes with the exact same constants.
struct Knob {
  const char* name;
  uint64_t value;
};

std::vector<Knob> Fingerprint(const LoomOptions& o) {
  return {
      {"k", o.base.k},
      {"expected_vertices", o.base.expected_vertices},
      {"expected_edges", o.base.expected_edges},
      {"max_imbalance", Bits(o.base.max_imbalance)},
      {"window_size", o.window_size},
      {"support_threshold", Bits(o.support_threshold)},
      {"prime", o.prime},
      {"signature_seed", o.signature_seed},
      {"eo_alpha", Bits(o.equal_opportunism.alpha)},
      {"eo_balance_b", Bits(o.equal_opportunism.balance_b)},
      {"eo_neighbor_bid_weight", Bits(o.equal_opportunism.neighbor_bid_weight)},
      {"eo_disable_rationing", o.equal_opportunism.disable_rationing ? 1u : 0u},
      {"matcher_max_matches_per_vertex", o.matcher.max_matches_per_vertex},
      {"compact_interval", o.compact_interval},
  };
}

}  // namespace

void SaveLoomCore(io::CheckpointWriter* w, const LoomCoreState& state) {
  w->BeginSection("loom");
  w->U64(state.ctor_num_labels);
  w->U64(state.label_values->num_labels());  // may have grown past ctor
  const std::vector<Knob> knobs = Fingerprint(*state.options);
  w->U32(static_cast<uint32_t>(knobs.size()));
  for (const Knob& k : knobs) {
    w->Str(k.name);
    w->U64(k.value);
  }
  w->U64(TrieFingerprint(*state.trie));
  w->EndSection();

  w->BeginSection("loom_stats");
  w->U64(state.stats->edges_ingested);
  w->U64(state.stats->edges_bypassed);
  w->U64(state.stats->edges_via_window);
  w->U64(state.stats->clusters_allocated);
  w->U64(state.stats->cluster_edges_assigned);
  w->U64(*state.edges_since_compact);
  const motif::MatcherStats& m = state.matcher->stats();
  w->U64(m.edges_admitted);
  w->U64(m.single_edge_matches);
  w->U64(m.extension_matches);
  w->U64(m.join_matches);
  w->U64(m.join_attempts);
  w->EndSection();

  state.partitioning->SaveTo(w);
  state.window->SaveTo(w);
  state.match_list->SaveTo(w);
}

size_t RestoreLoomCore(io::CheckpointReader* r, const LoomCoreState& state) {
  assert(state.stats->edges_ingested == 0 && "restore into a fresh backend");
  r->Open("loom");
  const uint64_t ctor_labels = r->U64();
  const uint64_t grown_labels = r->U64();
  if (ctor_labels != state.ctor_num_labels) {
    r->Fail("label-space mismatch: checkpointed run started from " +
            std::to_string(ctor_labels) + " labels, this run from " +
            std::to_string(state.ctor_num_labels) +
            " (dataset or label registry changed; resume with the original "
            "label space)");
  }
  const std::vector<Knob> knobs = Fingerprint(*state.options);
  const uint32_t n_knobs = r->U32();
  if (n_knobs != knobs.size()) {
    r->Fail("options fingerprint arity mismatch (checkpoint from a build "
            "with different Loom knobs)");
  }
  for (const Knob& k : knobs) {
    const std::string name = r->Str();
    const uint64_t value = r->U64();
    if (name != k.name) {
      r->Fail("options fingerprint key order mismatch: expected '" +
              std::string(k.name) + "', checkpoint has '" + name + "'");
    }
    if (value != k.value) {
      r->Fail("options mismatch on '" + name +
              "': the resumed run is configured differently from the "
              "checkpointed one");
    }
  }
  const uint64_t trie_fp = r->U64();
  if (trie_fp != TrieFingerprint(*state.trie)) {
    r->Fail("workload mismatch: the TPSTry++ support fingerprint differs "
            "(resume must use the checkpointed run's workload and support "
            "threshold)");
  }
  r->Close();

  r->Open("loom_stats");
  state.stats->edges_ingested = r->U64();
  state.stats->edges_bypassed = r->U64();
  state.stats->edges_via_window = r->U64();
  state.stats->clusters_allocated = r->U64();
  state.stats->cluster_edges_assigned = r->U64();
  *state.edges_since_compact = r->U64();
  motif::MatcherStats ms;
  ms.edges_admitted = r->U64();
  ms.single_edge_matches = r->U64();
  ms.extension_matches = r->U64();
  ms.join_matches = r->U64();
  ms.join_attempts = r->U64();
  state.matcher->RestoreStats(ms);
  r->Close();

  state.partitioning->LoadFrom(r);
  state.window->LoadFrom(r);
  state.match_list->LoadFrom(r);

  // Replay the label growth the checkpointed run performed: the retained-RNG
  // draw sequence makes the regrown values bit-identical.
  state.label_values->EnsureLabels(grown_labels);
  return state.label_values->num_labels();
}

}  // namespace core
}  // namespace loom
