// Concurrent vertex -> partition lookup table for the serving path.
//
// The contention shape is extreme but friendly: ONE writer (the server's
// decision thread, which is also the only thread mutating the session) and
// many readers (every connection thread answering GET). Assignments are
// write-once — a streaming partitioner places each vertex exactly once per
// run — so the table is a chunked directory of write-once atomics:
//
//   * Get() is wait-free: two acquire loads (chunk pointer, then slot), no
//     lock anywhere, so lookups NEVER block ingest and ingest never blocks
//     lookups. A concurrent Publish is simply either visible or not yet.
//   * Publish() allocates 64K-slot chunks lazily on first touch, so memory
//     tracks the touched id range, not the 2^32 id space.
//
// The table doubles as an io::AssignmentSink so a Session publishes into it
// through the ordinary sink fanout — the serving layer gets its read path
// without any backend-specific hook.

#ifndef LOOM_SERVE_ASSIGNMENT_TABLE_H_
#define LOOM_SERVE_ASSIGNMENT_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

#include "graph/types.h"
#include "io/assignment_sink.h"

namespace loom {
namespace serve {

class AssignmentTable : public io::AssignmentSink {
 public:
  static constexpr size_t kChunkBits = 16;  // 64K slots per chunk
  static constexpr size_t kChunkSlots = size_t{1} << kChunkBits;
  static constexpr size_t kNumChunks = size_t{1} << (32 - kChunkBits);

  AssignmentTable() = default;
  ~AssignmentTable() override;

  AssignmentTable(const AssignmentTable&) = delete;
  AssignmentTable& operator=(const AssignmentTable&) = delete;

  /// Wait-free lookup from any thread: the vertex's partition, or
  /// graph::kNoPartition while unassigned.
  graph::PartitionId Get(graph::VertexId v) const {
    const Chunk* chunk =
        chunks_[v >> kChunkBits].load(std::memory_order_acquire);
    if (chunk == nullptr) return graph::kNoPartition;
    return (*chunk)[v & (kChunkSlots - 1)].load(std::memory_order_acquire);
  }

  /// Decision-thread publish (single writer). Release-ordered so a reader
  /// that observes the slot also observes everything the decision preceded.
  void Publish(graph::VertexId v, graph::PartitionId p);

  /// io::AssignmentSink — lets a Session fan OnAssign placements straight
  /// into the table.
  void Append(graph::VertexId v, graph::PartitionId p) override {
    Publish(v, p);
  }
  void Flush() override {}

  /// Vertices currently holding an assignment (relaxed counter, maintained
  /// by the writer; readers may lag by in-flight publishes).
  uint64_t assigned() const {
    return assigned_.load(std::memory_order_relaxed);
  }

 private:
  using Chunk = std::array<std::atomic<graph::PartitionId>, kChunkSlots>;

  std::array<std::atomic<Chunk*>, kNumChunks> chunks_{};
  std::atomic<uint64_t> assigned_{0};
};

}  // namespace serve
}  // namespace loom

#endif  // LOOM_SERVE_ASSIGNMENT_TABLE_H_
