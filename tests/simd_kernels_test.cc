// Differential wall for the util::simd kernels: every SIMD level must be
// BYTE-identical to the scalar reference on every input — integers, booleans
// and doubles (compared through memcmp, so even a sign-of-zero or ulp drift
// fails). Legs:
//   - exhaustive small domains: all uint8 residue pairs mod 251 (and edge
//     primes 2/3/254/255), the full uint16 value range per prime, and every
//     vector-width tail length 0..2*lanes for each kernel;
//   - seeded property fuzz: random factor multisets (positive and mutated
//     negative cases) through the multiset-extension kernel, random bid
//     tables through BidTotals, random gather/tally inputs with
//     out-of-range indices and kNoPartition entries;
//   - degenerate shapes: empty inputs, all-ties bids, k at the compare-sweep
//     boundary and the 256-partition maximum.

#include "util/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/rng.h"

namespace loom {
namespace util {
namespace simd {
namespace {

std::vector<Level> Levels() { return SupportedLevels(); }

/// Non-scalar levels (the ones that must match the scalar reference).
std::vector<Level> SimdLevels() {
  std::vector<Level> out;
  for (Level l : Levels()) {
    if (l != Level::kScalar) out.push_back(l);
  }
  return out;
}

bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// --------------------------------------------------------------- residues

TEST(SimdResidueTest, ExhaustiveAllUint8PairsMod251) {
  // Every (a, b) with a, b < p for the paper's prime — the full domain the
  // edge-factor kernel ever sees at p = 251.
  for (uint32_t p : {251u, 2u, 3u, 254u, 255u}) {
    std::vector<uint16_t> a, b;
    for (uint32_t x = 0; x < p; ++x) {
      for (uint32_t y = 0; y < p; ++y) {
        a.push_back(static_cast<uint16_t>(x));
        b.push_back(static_cast<uint16_t>(y));
      }
    }
    std::vector<uint16_t> want(a.size()), got(a.size());
    ResidueDiffU16(Level::kScalar, a.data(), b.data(), a.size(), p,
                   want.data());
    // Independent check of the scalar reference against the definition.
    for (size_t i = 0; i < a.size(); ++i) {
      int64_t r = (static_cast<int64_t>(a[i]) - b[i]) % static_cast<int64_t>(p);
      if (r < 0) r += p;
      ASSERT_EQ(want[i], r == 0 ? p : r) << "a=" << a[i] << " b=" << b[i];
    }
    for (Level level : SimdLevels()) {
      std::fill(got.begin(), got.end(), 0xABCD);
      ResidueDiffU16(level, a.data(), b.data(), a.size(), p, got.data());
      ASSERT_EQ(want, got) << "p=" << p << " level=" << LevelName(level);
    }
  }
}

TEST(SimdResidueTest, ExhaustiveFullUint16RangePerPrime) {
  for (uint32_t p : {251u, 2u, 3u, 128u, 254u, 255u}) {
    std::vector<uint16_t> v(65536);
    for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<uint16_t>(i);
    std::vector<uint16_t> want(v.size()), got(v.size());
    ResidueU16(Level::kScalar, v.data(), v.size(), p, want.data());
    for (size_t i = 0; i < v.size(); ++i) {
      const uint32_t r = static_cast<uint32_t>(v[i]) % p;
      ASSERT_EQ(want[i], r == 0 ? p : r);
    }
    for (Level level : SimdLevels()) {
      std::fill(got.begin(), got.end(), 0);
      ResidueU16(level, v.data(), v.size(), p, got.data());
      ASSERT_EQ(want, got) << "p=" << p << " level=" << LevelName(level);
    }
  }
}

TEST(SimdResidueTest, EveryTailLength) {
  // Kernel widths are 16 uint16 lanes (AVX2); cover 0..2*lanes for both
  // residue kernels so every partial-vector tail path runs.
  util::Rng rng(0x7A11);
  const uint32_t p = 251;
  for (size_t n = 0; n <= 32; ++n) {
    std::vector<uint16_t> a(n), b(n), v(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<uint16_t>(rng.Uniform(p));
      b[i] = static_cast<uint16_t>(rng.Uniform(p));
      v[i] = static_cast<uint16_t>(rng.Uniform(65536));
    }
    std::vector<uint16_t> want_d(n), want_v(n), got(n);
    ResidueDiffU16(Level::kScalar, a.data(), b.data(), n, p, want_d.data());
    ResidueU16(Level::kScalar, v.data(), n, p, want_v.data());
    for (Level level : SimdLevels()) {
      ResidueDiffU16(level, a.data(), b.data(), n, p, got.data());
      ASSERT_EQ(want_d, got) << "n=" << n << " " << LevelName(level);
      ResidueU16(level, v.data(), n, p, got.data());
      ASSERT_EQ(want_v, got) << "n=" << n << " " << LevelName(level);
    }
  }
}

TEST(SimdResidueTest, EdgeAdditionFactorsExhaustivePairsAndDegreeSweep) {
  const uint32_t p = 251;
  uint32_t want[3], got[3];
  // All value pairs at a fixed degree, then a degree sweep crossing the
  // one-subtract boundary and the uint32 extremes.
  for (uint32_t va = 0; va < p; ++va) {
    for (uint32_t vb = 0; vb < p; ++vb) {
      EdgeAdditionFactors(Level::kScalar, va, vb, va, 3, vb, 1, p, want);
      for (Level level : SimdLevels()) {
        EdgeAdditionFactors(level, va, vb, va, 3, vb, 1, p, got);
        ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
            << "va=" << va << " vb=" << vb << " " << LevelName(level);
      }
    }
  }
  for (uint32_t deg : {0u, 1u, 2u, 249u, 250u, 251u, 252u, 1000u, 65535u,
                       1u << 20, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
    for (uint32_t value : {0u, 1u, 97u, 250u}) {
      EdgeAdditionFactors(Level::kScalar, value, 13, value, deg, 13, deg, p,
                          want);
      for (Level level : SimdLevels()) {
        EdgeAdditionFactors(level, value, 13, value, deg, 13, deg, p, got);
        ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
            << "value=" << value << " deg=" << deg << " " << LevelName(level);
      }
    }
  }
  // Primes outside the uint16 regime (internal fallback must stay exact).
  for (uint32_t big_p : {257u, 65521u, 0x7FFFFFFFu}) {
    util::Rng rng(big_p);
    for (int it = 0; it < 2000; ++it) {
      const uint32_t a = static_cast<uint32_t>(rng.Uniform(big_p));
      const uint32_t b = static_cast<uint32_t>(rng.Uniform(big_p));
      const uint32_t d = static_cast<uint32_t>(rng.Uniform(1u << 31));
      EdgeAdditionFactors(Level::kScalar, a, b, a, d, b, d + 1, big_p, want);
      for (Level level : SimdLevels()) {
        EdgeAdditionFactors(level, a, b, a, d, b, d + 1, big_p, got);
        ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
            << "p=" << big_p << " " << LevelName(level);
      }
    }
  }
}

// ------------------------------------------------- ordered-array primitives

TEST(SimdOrderedTest, CountLessEqAndRangeEqualEveryTailLength) {
  util::Rng rng(0xC0DE);
  for (size_t n = 0; n <= 16; ++n) {
    for (int it = 0; it < 50; ++it) {
      std::vector<uint32_t> a(n), b(n);
      for (size_t i = 0; i < n; ++i) {
        a[i] = static_cast<uint32_t>(rng.Uniform(64));
        b[i] = a[i];
      }
      // Half the iterations flip one element so inequality paths run.
      if (n > 0 && it % 2 == 1) b[rng.Uniform(n)] ^= 1u << rng.Uniform(31);
      const uint32_t v = static_cast<uint32_t>(rng.Uniform(64));
      const size_t want_c = CountLessEqU32(Level::kScalar, a.data(), n, v);
      const bool want_eq = RangeEqualU32(Level::kScalar, a.data(), b.data(), n);
      for (Level level : SimdLevels()) {
        ASSERT_EQ(want_c, CountLessEqU32(level, a.data(), n, v))
            << "n=" << n << " " << LevelName(level);
        ASSERT_EQ(want_eq, RangeEqualU32(level, a.data(), b.data(), n))
            << "n=" << n << " " << LevelName(level);
      }
    }
  }
  // Unsigned-compare boundary: values straddling the sign bit.
  const std::vector<uint32_t> edge = {0u, 1u, 0x7FFFFFFFu, 0x80000000u,
                                      0xFFFFFFFEu, 0xFFFFFFFFu};
  for (uint32_t v : edge) {
    const size_t want = CountLessEqU32(Level::kScalar, edge.data(),
                                       edge.size(), v);
    for (Level level : SimdLevels()) {
      ASSERT_EQ(want, CountLessEqU32(level, edge.data(), edge.size(), v))
          << "v=" << v << " " << LevelName(level);
    }
  }
}

TEST(SimdOrderedTest, MultisetExtendsFuzzPositiveAndMutated) {
  util::Rng rng(0x5EED);
  for (int it = 0; it < 4000; ++it) {
    // Random sorted base (sizes cross the small-m merge-walk cutoff), delta
    // of 0..4 factors, grown = sorted union — then possibly mutated.
    const size_t n = rng.Uniform(48);
    const size_t d = rng.Uniform(5);
    std::vector<uint32_t> base(n), delta(d);
    for (auto& x : base) x = static_cast<uint32_t>(1 + rng.Uniform(250));
    for (auto& x : delta) x = static_cast<uint32_t>(1 + rng.Uniform(250));
    std::sort(base.begin(), base.end());
    std::sort(delta.begin(), delta.end());
    std::vector<uint32_t> grown;
    grown.reserve(n + d);
    grown.insert(grown.end(), base.begin(), base.end());
    grown.insert(grown.end(), delta.begin(), delta.end());
    std::sort(grown.begin(), grown.end());
    switch (it % 4) {
      case 0:
        break;  // true extension
      case 1:  // corrupt one grown element
        if (!grown.empty()) {
          grown[rng.Uniform(grown.size())] += 1;
          std::sort(grown.begin(), grown.end());
        }
        break;
      case 2:  // wrong size
        grown.push_back(static_cast<uint32_t>(1 + rng.Uniform(250)));
        std::sort(grown.begin(), grown.end());
        break;
      case 3:  // unrelated multiset of the right size
        for (auto& x : grown) x = static_cast<uint32_t>(1 + rng.Uniform(250));
        std::sort(grown.begin(), grown.end());
        break;
    }
    const bool want =
        MultisetExtendsU32(Level::kScalar, base.data(), base.size(),
                           delta.data(), delta.size(), grown.data(),
                           grown.size());
    for (Level level : SimdLevels()) {
      ASSERT_EQ(want, MultisetExtendsU32(level, base.data(), base.size(),
                                         delta.data(), delta.size(),
                                         grown.data(), grown.size()))
          << "it=" << it << " " << LevelName(level);
    }
  }
}

TEST(SimdOrderedTest, MultisetExtendsDuplicateHeavyDomains) {
  // Tiny alphabets force duplicate runs across base/delta/grown — the tie
  // handling the insertion-point formulation must get right.
  util::Rng rng(0xD00D);
  for (int it = 0; it < 3000; ++it) {
    const size_t n = 32 + rng.Uniform(16);  // past the merge-walk cutoff
    const size_t d = rng.Uniform(4);
    std::vector<uint32_t> base(n), delta(d);
    for (auto& x : base) x = static_cast<uint32_t>(1 + rng.Uniform(3));
    for (auto& x : delta) x = static_cast<uint32_t>(1 + rng.Uniform(3));
    std::sort(base.begin(), base.end());
    std::sort(delta.begin(), delta.end());
    std::vector<uint32_t> grown;
    grown.insert(grown.end(), base.begin(), base.end());
    grown.insert(grown.end(), delta.begin(), delta.end());
    std::sort(grown.begin(), grown.end());
    if (it % 2 == 1 && !grown.empty()) {
      grown[rng.Uniform(grown.size())] = 1 + (grown[0] % 3);
      std::sort(grown.begin(), grown.end());
    }
    const bool want =
        MultisetExtendsU32(Level::kScalar, base.data(), base.size(),
                           delta.data(), delta.size(), grown.data(),
                           grown.size());
    for (Level level : SimdLevels()) {
      ASSERT_EQ(want, MultisetExtendsU32(level, base.data(), base.size(),
                                         delta.data(), delta.size(),
                                         grown.data(), grown.size()))
          << "it=" << it << " " << LevelName(level);
    }
  }
}

TEST(SimdOrderedTest, SortedDifferenceFuzzAndEdgeIdZero) {
  util::Rng rng(0xD1FF);
  for (int it = 0; it < 4000; ++it) {
    // Haystacks across the kMaxQueryEdges regime (0..24) and beyond the
    // vector path (25..40); needles overlap it about half the time.
    const size_t n = it % 3 == 0 ? rng.Uniform(25) : rng.Uniform(41);
    const size_t m = rng.Uniform(24);
    std::vector<uint32_t> haystack(n), needles(m);
    for (auto& h : haystack) {
      // Include EdgeId 0 often: masked maskload lanes read 0 and must not
      // fake a membership hit.
      h = static_cast<uint32_t>(rng.Uniform(30));
    }
    std::sort(haystack.begin(), haystack.end());
    for (auto& x : needles) x = static_cast<uint32_t>(rng.Uniform(30));
    std::vector<uint32_t> want(m), got(m);
    const size_t want_n =
        SortedDifferenceU32(Level::kScalar, needles.data(), m, haystack.data(),
                            n, want.data());
    want.resize(want_n);
    for (Level level : SimdLevels()) {
      got.assign(m, 0xDEAD);
      const size_t got_n = SortedDifferenceU32(level, needles.data(), m,
                                               haystack.data(), n, got.data());
      got.resize(got_n);
      ASSERT_EQ(want, got) << "it=" << it << " n=" << n << " "
                           << LevelName(level);
      got.resize(m);
    }
    // In-place filtering (out == needles) is part of the contract.
    std::vector<uint32_t> inplace = needles;
    const size_t in_n = SortedDifferenceU32(inplace.data(), m, haystack.data(),
                                            n, inplace.data());
    inplace.resize(in_n);
    ASSERT_EQ(want, inplace) << "it=" << it;
  }
}

// ------------------------------------------------------- gather and tallies

TEST(SimdTallyTest, GatherTallyFuzzWithOutOfRangeAndNoPartition) {
  util::Rng rng(0x6A44);
  constexpr uint32_t kNoPartition = 0xFFFFFFFFu;
  for (int it = 0; it < 400; ++it) {
    const size_t table_n = 1 + rng.Uniform(500);
    const uint32_t k = 1 + static_cast<uint32_t>(rng.Uniform(40));
    std::vector<uint32_t> table(table_n);
    for (auto& t : table) {
      // Mix of assigned partitions, kNoPartition holes, and stray values in
      // [k, 255] / above 255 (must be ignored, not merely saturated away).
      const uint64_t roll = rng.Uniform(10);
      if (roll < 6) {
        t = static_cast<uint32_t>(rng.Uniform(k));
      } else if (roll < 8) {
        t = kNoPartition;
      } else {
        t = k + static_cast<uint32_t>(rng.Uniform(1000));
      }
    }
    // Tail lengths around every chunk boundary: 0..2*32 plus larger.
    const size_t n = it % 2 == 0 ? rng.Uniform(65) : 64 + rng.Uniform(700);
    std::vector<uint32_t> idx(n);
    for (auto& i : idx) {
      // ~1/8 out of range (beyond table_n, incl. > INT32-ish patterns).
      i = rng.Uniform(8) == 0
              ? static_cast<uint32_t>(table_n + rng.Uniform(1u << 20))
              : static_cast<uint32_t>(rng.Uniform(table_n));
    }

    std::vector<uint32_t> want_g(n), got_g(n);
    GatherU32(Level::kScalar, table.data(), table_n, idx.data(), n, 777u,
              want_g.data());
    std::vector<uint32_t> want_c(k, 3), got_c(k, 3);  // accumulate, not clear
    TallyU32(Level::kScalar, want_g.data(), n, k, want_c.data());
    std::vector<uint32_t> want_f(k, 0), got_f(k, 0);
    TallyGatherU32(Level::kScalar, table.data(), table_n, idx.data(), n, k,
                   want_f.data());
    for (Level level : SimdLevels()) {
      std::fill(got_g.begin(), got_g.end(), 0);
      GatherU32(level, table.data(), table_n, idx.data(), n, 777u,
                got_g.data());
      ASSERT_EQ(want_g, got_g) << "it=" << it << " " << LevelName(level);
      std::fill(got_c.begin(), got_c.end(), 3);
      TallyU32(level, want_g.data(), n, k, got_c.data());
      ASSERT_EQ(want_c, got_c) << "it=" << it << " " << LevelName(level);
      std::fill(got_f.begin(), got_f.end(), 0);
      TallyGatherU32(level, table.data(), table_n, idx.data(), n, k,
                     got_f.data());
      ASSERT_EQ(want_f, got_f) << "it=" << it << " " << LevelName(level);
    }
    // The fused kernel must agree with gather-then-tally composition.
    std::vector<uint32_t> composed(k, 0);
    std::vector<uint32_t> pids(n);
    GatherU32(Level::kScalar, table.data(), table_n, idx.data(), n,
              kNoPartition, pids.data());
    TallyU32(Level::kScalar, pids.data(), n, k, composed.data());
    ASSERT_EQ(want_f, composed) << "it=" << it;
  }
}

TEST(SimdTallyTest, WideKAndMaxKBoundaries) {
  util::Rng rng(0xBEEF);
  // k at the compare-sweep boundary and the 256-partition engine maximum —
  // the sweep must hand off to the histogram without miscounting.
  for (uint32_t k : {31u, 32u, 33u, 255u, 256u}) {
    const size_t n = 513;
    std::vector<uint32_t> vals(n);
    for (auto& v : vals) {
      v = rng.Uniform(4) == 0 ? 0xFFFFFFFFu
                              : static_cast<uint32_t>(rng.Uniform(k + 3));
    }
    std::vector<uint32_t> want(k, 0), got(k, 0);
    TallyU32(Level::kScalar, vals.data(), n, k, want.data());
    for (Level level : SimdLevels()) {
      std::fill(got.begin(), got.end(), 0);
      TallyU32(level, vals.data(), n, k, got.data());
      ASSERT_EQ(want, got) << "k=" << k << " " << LevelName(level);
    }
  }
}

TEST(SimdTallyTest, AddAndAccumulateScaledBitIdentical) {
  util::Rng rng(0xACC);
  for (size_t n : {0u, 1u, 3u, 8u, 15u, 16u, 17u, 33u, 100u}) {
    std::vector<uint32_t> src(n), dst_a(n), dst_b(n);
    std::vector<double> acc_a(n), acc_b(n);
    for (size_t i = 0; i < n; ++i) {
      src[i] = static_cast<uint32_t>(rng.Uniform(1u << 31));
      dst_a[i] = dst_b[i] = static_cast<uint32_t>(rng.Uniform(1000));
      acc_a[i] = acc_b[i] = static_cast<double>(rng.Uniform(1000)) / 7.0;
    }
    const double w = 0.25 + static_cast<double>(rng.Uniform(100)) / 300.0;
    AddU32(Level::kScalar, dst_a.data(), src.data(), n);
    AccumulateScaledU32(Level::kScalar, acc_a.data(), src.data(), w, n);
    for (Level level : SimdLevels()) {
      std::vector<uint32_t> d = dst_b;
      std::vector<double> a = acc_b;
      AddU32(level, d.data(), src.data(), n);
      ASSERT_EQ(dst_a, d) << "n=" << n << " " << LevelName(level);
      AccumulateScaledU32(level, a.data(), src.data(), w, n);
      ASSERT_TRUE(BitsEqual(acc_a, a)) << "n=" << n << " " << LevelName(level);
    }
  }
}

// -------------------------------------------------------------- bid totals

TEST(SimdBidTotalsTest, FuzzAndDegenerateShapes) {
  util::Rng rng(0xB1D5);
  for (int it = 0; it < 1500; ++it) {
    // Shapes: empty cluster, single match, all-ties, k up to 64 and the
    // odd/even lane tails around the 2- and 4-wide chunks.
    const uint32_t k = 1 + static_cast<uint32_t>(rng.Uniform(64));
    const size_t rows = it % 7 == 0 ? 0 : rng.Uniform(40);
    std::vector<double> overlap(rows * k, 0.0);
    std::vector<double> residual(k), support(rows);
    std::vector<uint32_t> count(k);
    const bool all_ties = it % 5 == 0;
    for (size_t i = 0; i < overlap.size(); ++i) {
      // Mostly zeros (the scalar skip path), some positives; occasionally
      // the same value everywhere so every tie-sensitive sum collides.
      if (all_ties) {
        overlap[i] = 2.0;
      } else {
        overlap[i] = rng.Uniform(3) == 0
                         ? static_cast<double>(rng.Uniform(5))
                         : 0.0;
      }
    }
    for (uint32_t si = 0; si < k; ++si) {
      residual[si] =
          all_ties ? 0.5 : static_cast<double>(rng.Uniform(1000)) / 999.0;
      count[si] = static_cast<uint32_t>(rng.Uniform(rows + 1));
    }
    for (size_t i = 0; i < rows; ++i) {
      support[i] =
          all_ties ? 0.25 : static_cast<double>(rng.Uniform(1000)) / 999.0;
    }
    std::vector<double> want(k), got(k);
    BidTotals(Level::kScalar, overlap.data(), rows, k, residual.data(),
              support.data(), count.data(), want.data());
    for (Level level : SimdLevels()) {
      std::fill(got.begin(), got.end(), -1.0);
      BidTotals(level, overlap.data(), rows, k, residual.data(),
                support.data(), count.data(), got.data());
      ASSERT_TRUE(BitsEqual(want, got))
          << "it=" << it << " k=" << k << " rows=" << rows << " "
          << LevelName(level);
    }
    // The inline small-shape wrapper must agree with the level API too.
    std::vector<double> via_wrapper(k, -2.0);
    const Level saved = ActiveLevel();
    for (Level level : Levels()) {
      SetActiveLevel(level);
      std::fill(via_wrapper.begin(), via_wrapper.end(), -2.0);
      BidTotals(overlap.data(), rows, k, residual.data(), support.data(),
                count.data(), via_wrapper.data());
      ASSERT_TRUE(BitsEqual(want, via_wrapper))
          << "wrapper level=" << LevelName(level);
    }
    SetActiveLevel(saved);
  }
}

// ---------------------------------------------------------------- dispatch

TEST(SimdDispatchTest, ParseAndNames) {
  Level level;
  EXPECT_TRUE(ParseLevel("scalar", &level));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(ParseLevel("sse2", &level));
  EXPECT_EQ(level, Level::kSSE2);
  EXPECT_TRUE(ParseLevel("avx2", &level));
  EXPECT_EQ(level, Level::kAVX2);
  EXPECT_TRUE(ParseLevel("auto", &level));
  EXPECT_EQ(level, DetectCpuLevel());
  EXPECT_FALSE(ParseLevel("avx512", &level));
  EXPECT_FALSE(ParseLevel("", &level));
  for (Level l : SupportedLevels()) {
    Level parsed;
    ASSERT_TRUE(ParseLevel(LevelName(l), &parsed));
    EXPECT_EQ(parsed, l);
  }
}

TEST(SimdDispatchTest, SetActiveLevelClampsAndConfigureSemantics) {
  const Level saved = ActiveLevel();
  // Requesting more than the CPU supports clamps (never errors).
  const Level installed = SetActiveLevel(Level::kAVX2);
  EXPECT_LE(static_cast<int>(installed), static_cast<int>(DetectCpuLevel()));
  EXPECT_EQ(installed, ActiveLevel());
  EXPECT_EQ(SetActiveLevel(Level::kScalar), Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  EXPECT_FALSE(Configure("bogus"));
  EXPECT_EQ(ActiveLevel(), Level::kScalar) << "failed Configure must not move";
  // "auto" never overrides a pinned level (it is the EngineOptions default,
  // applied on every registry Create — a reset here would clobber harnesses
  // that pin a level and then build backends).
  EXPECT_TRUE(Configure("auto"));
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  for (Level level : SupportedLevels()) {
    EXPECT_TRUE(Configure(LevelName(level)));
    EXPECT_EQ(ActiveLevel(), level);
  }
  SetActiveLevel(saved);
}

TEST(SimdDispatchTest, SupportedLevelsStartsWithScalar) {
  const std::vector<Level> levels = SupportedLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
  }
}

}  // namespace
}  // namespace simd
}  // namespace util
}  // namespace loom
