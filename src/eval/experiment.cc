#include "eval/experiment.h"

#include <cassert>
#include <stdexcept>

#include "partition/partition_metrics.h"
#include "query/workload_runner.h"

// NOTE: deliberately no core/ backend headers and no downcasts to concrete
// backends in this layer — behavioural counters arrive through
// engine::Session's RunReport (observer events) only.

namespace loom {
namespace eval {

std::string ToString(System s) {
  switch (s) {
    case System::kHash: return "hash";
    case System::kLdg: return "ldg";
    case System::kFennel: return "fennel";
    case System::kLoom: return "loom";
  }
  return "?";
}

std::vector<System> AllSystems() {
  return {System::kHash, System::kLdg, System::kFennel, System::kLoom};
}

uint64_t HashAssignment(const partition::Partitioning& p,
                        size_t num_vertices) {
  return partition::AssignmentHash(p, num_vertices);
}

const SystemResult* ComparisonResult::Find(System s) const {
  for (const SystemResult& r : systems) {
    if (r.system == s) return &r;
  }
  return nullptr;
}

uint64_t SystemResult::BackendStat(std::string_view name) const {
  return engine::FindCounter(backend_stats, name);
}

engine::EngineOptions ToEngineOptions(const ExperimentConfig& config,
                                      const datasets::Dataset& ds) {
  engine::EngineOptions o;
  o.k = config.k;
  o.expected_vertices = ds.NumVertices();
  o.expected_edges = ds.NumEdges();
  o.window_size = config.window_size;
  o.support_threshold = config.support_threshold;
  o.alpha = config.alpha;
  o.balance_b = config.balance_b;
  o.neighbor_bid_weight = config.neighbor_bid_weight;
  o.disable_rationing = config.disable_rationing;
  return o;
}

std::unique_ptr<partition::Partitioner> MakePartitioner(
    System system, const datasets::Dataset& ds,
    const ExperimentConfig& config) {
  std::string error;
  const engine::BuildContext context{&ds.workload, ds.registry.size()};
  std::unique_ptr<partition::Partitioner> p =
      engine::PartitionerRegistry::Global().Create(
          ToString(system), ToEngineOptions(config, ds), context, &error);
  assert(p != nullptr && error.empty());
  return p;
}

namespace {

/// One (spec, dataset, source) cell through engine::Session: build by
/// spec, replay the source, and read every behavioural counter from the
/// session's event-sourced RunReport.
std::optional<SystemResult> RunWithSession(const std::string& spec,
                                           System system,
                                           const datasets::Dataset& ds,
                                           engine::EdgeSource& source,
                                           const ExperimentConfig& config,
                                           bool run_queries,
                                           std::string* error) {
  engine::SessionConfig session_config;
  session_config.spec = spec;
  session_config.options = ToEngineOptions(config, ds);
  std::unique_ptr<engine::Session> session = engine::Session::Create(
      session_config, {&ds.workload, ds.registry.size()}, error);
  if (session == nullptr) return std::nullopt;

  SystemResult result;
  result.system = system;
  source.Reset();
  // The timed region is the whole batched drive, so producing the stream
  // (lazy synthesis or replay copy) counts as ingest wall-time — the
  // honest number for a *streaming* partitioner, and within run-to-run
  // noise of the pre-facade loop even for the hash baseline.
  const engine::RunReport report = session->Run(source);
  result.label = report.backend;
  result.partition_ms = report.ms;
  result.ms_per_10k_edges =
      report.edges == 0 ? 0.0
                        : result.partition_ms * 10000.0 /
                              static_cast<double>(report.edges);
  result.edges_per_sec = report.edges_per_sec;
  result.backend_stats = report.backend_stats;

  const partition::Partitioning& partitioning = session->partitioning();
  result.edge_cut = partition::EdgeCut(ds.graph, partitioning);
  result.imbalance = partition::Imbalance(partitioning);
  result.assignment_hash = HashAssignment(partitioning, ds.NumVertices());

  // Edge-partitioning backends report their quality triple through the
  // event stream (FillFinalStats counters); vertex backends report no edge
  // counters and keep the zeros.
  const uint64_t edge_assignments = report.Stat("edge_assignments");
  if (edge_assignments > 0) {
    const uint64_t vertices_seen = report.Stat("vertices_seen");
    result.replication_factor =
        vertices_seen > 0 ? static_cast<double>(report.Stat("replica_total")) /
                                static_cast<double>(vertices_seen)
                          : 0.0;
    result.edge_balance =
        static_cast<double>(report.Stat("max_part_edges")) *
        partitioning.k() / static_cast<double>(edge_assignments);
    result.edge_assignment_hash = report.Stat("edge_assignment_hash");
  }

  if (run_queries) {
    query::WorkloadResult wr = query::RunWorkload(ds.graph, partitioning,
                                                  ds.workload, config.executor);
    result.weighted_ipt = wr.weighted_ipt;
    result.matches = wr.total_matches;
  }
  return result;
}

SystemResult RunCommon(System system, const datasets::Dataset& ds,
                       engine::EdgeSource& source,
                       const ExperimentConfig& config, bool run_queries) {
  std::string error;
  std::optional<SystemResult> result = RunWithSession(
      ToString(system), system, ds, source, config, run_queries, &error);
  if (!result.has_value()) {
    // The paper systems are pre-registered, so this is always a harness
    // bug — fail loudly rather than let a zeroed SystemResult pose as a
    // measurement in a comparison table (asserts vanish under NDEBUG).
    throw std::runtime_error("eval: building '" + ToString(system) +
                             "' failed: " + error);
  }
  return std::move(*result);
}

}  // namespace

SystemResult RunSystem(System system, const datasets::Dataset& ds,
                       engine::EdgeSource& source,
                       const ExperimentConfig& config) {
  return RunCommon(system, ds, source, config, /*run_queries=*/true);
}

SystemResult RunSystem(System system, const datasets::Dataset& ds,
                       const stream::EdgeStream& es,
                       const ExperimentConfig& config) {
  engine::EdgeStreamSource source(es);
  return RunCommon(system, ds, source, config, /*run_queries=*/true);
}

SystemResult RunSystemTimingOnly(System system, const datasets::Dataset& ds,
                                 engine::EdgeSource& source,
                                 const ExperimentConfig& config) {
  return RunCommon(system, ds, source, config, /*run_queries=*/false);
}

SystemResult RunSystemTimingOnly(System system, const datasets::Dataset& ds,
                                 const stream::EdgeStream& es,
                                 const ExperimentConfig& config) {
  engine::EdgeStreamSource source(es);
  return RunCommon(system, ds, source, config, /*run_queries=*/false);
}

std::optional<SystemResult> RunBackendTimingOnly(const std::string& spec,
                                                 const datasets::Dataset& ds,
                                                 engine::EdgeSource& source,
                                                 const ExperimentConfig& config,
                                                 std::string* error) {
  std::optional<SystemResult> result = RunWithSession(
      spec, System::kHash, ds, source, config, /*run_queries=*/false, error);
  if (!result.has_value()) return std::nullopt;
  for (System s : AllSystems()) {
    if (ToString(s) == result->label) result->system = s;
  }
  result->label = spec;
  return result;
}

ComparisonResult RunComparison(const datasets::Dataset& ds,
                               const ExperimentConfig& config) {
  ComparisonResult out;
  out.dataset = ds.meta.name;
  out.order = config.order;
  out.k = config.k;

  // Pull-based: the arrival permutation is computed once; each system
  // replays it lazily (no materialised StreamEdge vector).
  std::unique_ptr<engine::EdgeSource> source =
      engine::MakeEdgeSource(ds, config.order, config.stream_seed);
  out.stream_edges = source->SizeHint();

  double hash_ipt = 0.0;
  for (System s : AllSystems()) {
    SystemResult r = RunSystem(s, ds, *source, config);
    if (s == System::kHash) hash_ipt = r.weighted_ipt;
    out.systems.push_back(r);
  }
  for (SystemResult& r : out.systems) {
    r.ipt_vs_hash = hash_ipt > 0.0 ? r.weighted_ipt / hash_ipt
                                   : (r.weighted_ipt > 0.0 ? 1.0 : 0.0);
  }
  return out;
}

}  // namespace eval
}  // namespace loom
