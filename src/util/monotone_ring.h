// A capped ring over monotonically-increasing ids, extracted from the two
// hand-rolled copies that used to live in stream::SlidingWindow and
// motif::MatchList's edge ring (ROADMAP refactor-debt item).
//
// The shape both call sites share: ids are unique and (mostly) increasing,
// so an entry with id `i` lives in slot `i & mask` of a power-of-two slot
// array covering the live span [head, tail). Find/Contains/Erase are one
// indexed load; appends claim a slot and advance the tail. When the live id
// span outgrows the slots (bypassed stream positions leave gaps, so the span
// is a multiple of the live count) the array grows by x4 — fewer, larger
// steps beat doubling because every growth re-places all claimed slots.
// Growth is capped: when the span itself exceeds the cap, entries that fell
// behind the hot tail spill into a small ordered overflow map, so memory is
// bounded by the cap + the live population, never by the stream's id range.
// The head lazily chases the oldest claimed id, stepping over each freed or
// never-claimed id exactly once.
//
// Invariants the template owns (previously duplicated, subtly, twice):
//   * span coverage: tail - head <= slots.size() for every claimed id, so
//     two in-span ids never share a slot;
//   * spill ordering: ids are only spilled when they fall behind the capped
//     coverage, and a spilled id keeps its overflow entry until erased —
//     GetOrCreate consults the overflow first so a drained-and-restarted
//     ring can never shadow a spilled id with a duplicate slot;
//   * span restart: when the ring part empties, the next insert restarts the
//     span at its id, so tombstone gaps from a drained ring are not counted
//     against the coverage.
//
// Oldest-first operations (PopOldest/PeekOldest/ForEach) assume overflow ids
// predate every ring id — true whenever ids are inserted in increasing order
// (the sliding-window discipline). Clients that insert out of order (the
// matchList commits a match's edges against ids that may already have been
// spilled) must not rely on them.

#ifndef LOOM_UTIL_MONOTONE_RING_H_
#define LOOM_UTIL_MONOTONE_RING_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "util/bits.h"

namespace loom {
namespace util {

/// The shared growth-cap rule: ~16x the expected live id span, clamped to
/// [1024, 2^22] slots. Both the sliding window and the matchList edge ring
/// use it (pinned by their tests).
inline size_t RingGrowthCap(size_t span) {
  return NextPow2(
      std::min<size_t>(std::max<size_t>(span * 16, 1024), size_t{1} << 22));
}

/// Ring of V keyed by monotone ids. V must be default-constructible and
/// movable. Ids of erased slots keep their V in place (capacity reuse for
/// vector-valued payloads); callers reset recycled payloads via the
/// `created` out-param of GetOrCreate.
template <typename V, typename Id = uint32_t>
class MonotoneRing {
 public:
  static constexpr Id kFreeKey = std::numeric_limits<Id>::max();

  MonotoneRing() = default;

  /// Hard ceiling on the slot array (ids spilling past it go to overflow).
  void SetGrowthCap(size_t cap) { max_slots_ = NextPow2(cap); }
  size_t GrowthCap() const { return max_slots_; }

  /// Pre-sizes the slot array to cover an id span of `span` (clamped to the
  /// growth cap), skipping early growth re-placements.
  void Presize(size_t span) {
    const size_t target = NextPow2(std::min(std::max<size_t>(span, 1), max_slots_));
    if (target > slots_.size()) Rehash(target);
  }

  /// Live entries (ring + overflow).
  size_t size() const { return ring_live_ + overflow_.size(); }
  bool empty() const { return size() == 0; }

  /// Current slot-array size (tests / growth stats).
  size_t NumSlots() const { return slots_.size(); }
  size_t OverflowSize() const { return overflow_.size(); }

  /// One past the newest claimed id (stale after a drain until the next
  /// insert restarts the span); for client-side ordering asserts.
  Id tail() const { return tail_; }

  bool Contains(Id id) const { return Find(id) != nullptr; }

  const V* Find(Id id) const {
    if (InSpan(id)) {
      const Slot& s = slots_[SlotOf(id)];
      if (s.key == id) return &s.value;
      // fall through: a spilled id can sit inside a restarted ring's span
    }
    if (!overflow_.empty()) {
      auto it = overflow_.find(id);
      if (it != overflow_.end()) return &it->second;
    }
    return nullptr;
  }
  V* Find(Id id) {
    return const_cast<V*>(static_cast<const MonotoneRing*>(this)->Find(id));
  }

  /// Returns the entry for `id`, creating it if absent. Sets `*created` when
  /// the returned payload is new (a recycled slot or a fresh overflow entry)
  /// so the caller can reset it — recycled slots intentionally keep their
  /// previous payload's allocations.
  V* GetOrCreate(Id id, bool* created) {
    assert(id != kFreeKey);
    *created = false;
    if (!overflow_.empty()) {
      // A spilled id keeps its overflow entry for life — checked before any
      // span restart so a drained ring can't shadow it.
      auto it = overflow_.find(id);
      if (it != overflow_.end()) return &it->second;
    }
    if (ring_live_ == 0) {
      // Empty ring (fresh, or every id freed): restart the span at id so
      // tombstone gaps don't count against the coverage.
      head_ = tail_ = id;
    }
    if (id < head_) {
      // Fell behind the capped coverage: file it in the overflow map.
      *created = true;
      return &overflow_[id];
    }
    if (id >= tail_) {
      const size_t need = static_cast<size_t>(id - head_) + 1;
      if (need > slots_.size()) GrowToCover(id);
      tail_ = id + 1;
    }
    Slot& s = slots_[SlotOf(id)];
    if (s.key != id) {
      // Claim (or recycle) the slot. A mismatched key here is always a
      // stale tenant from outside the live span (in-span ids never share a
      // slot), so the live count only grows when the slot was free.
      if (s.key == kFreeKey) ++ring_live_;
      s.key = id;
      *created = true;
    }
    return &s.value;
  }

  /// Append-only fast path: requires `id` to be new (asserted).
  V* Append(Id id) {
    bool created = false;
    V* v = GetOrCreate(id, &created);
    assert(created);
    return v;
  }

  /// Frees the entry for `id`. Ring slots keep their payload in place (see
  /// GetOrCreate); overflow entries are destroyed. Returns false if absent.
  bool Erase(Id id) {
    if (InSpan(id)) {
      Slot& s = slots_[SlotOf(id)];
      if (s.key == id) {
        s.key = kFreeKey;
        --ring_live_;
        ChaseHead();
        return true;
      }
    }
    if (!overflow_.empty() && overflow_.erase(id) > 0) return true;
    return false;
  }

  /// Removes and returns the oldest entry (overflow ids drain first; see the
  /// ordering caveat in the header comment). nullopt when empty.
  std::optional<V> PopOldest(Id* id_out = nullptr) {
    if (!overflow_.empty()) {
      auto it = overflow_.begin();
      if (id_out != nullptr) *id_out = it->first;
      V v = std::move(it->second);
      overflow_.erase(it);
      return v;
    }
    if (ring_live_ == 0) return std::nullopt;
    ChaseHead();
    Slot& s = slots_[SlotOf(head_)];
    assert(s.key == head_);
    if (id_out != nullptr) *id_out = head_;
    V v = std::move(s.value);
    s.key = kFreeKey;
    --ring_live_;
    ++head_;
    return v;
  }

  /// Oldest entry without removing it; nullptr when empty. The pointer is
  /// invalidated by the next insert (the slot array may grow).
  const V* PeekOldest(Id* id_out = nullptr) const {
    if (!overflow_.empty()) {
      if (id_out != nullptr) *id_out = overflow_.begin()->first;
      return &overflow_.begin()->second;
    }
    if (ring_live_ == 0) return nullptr;
    ChaseHead();
    if (id_out != nullptr) *id_out = head_;
    return &slots_[SlotOf(head_)].value;
  }

  /// Applies `fn(id, const V&)` to every live entry, oldest first (same
  /// ordering caveat as PopOldest).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [id, v] : overflow_) fn(id, v);
    for (Id id = head_; id < tail_; ++id) {
      const Slot& s = slots_[SlotOf(id)];
      if (s.key == id) fn(id, s.value);
    }
  }

 private:
  struct Slot {
    Id key = kFreeKey;
    V value{};
  };

  size_t SlotOf(Id id) const { return static_cast<size_t>(id) & mask_; }
  bool InSpan(Id id) const {
    return !slots_.empty() && id >= head_ && id < tail_;
  }

  /// Moves head_ forward past freed / never-claimed ids; each id is stepped
  /// over exactly once across the ring's life. Lazy (mutable) so PeekOldest
  /// stays const.
  void ChaseHead() const {
    if (ring_live_ == 0) {
      head_ = tail_;
      return;
    }
    while (head_ < tail_ && slots_[SlotOf(head_)].key != head_) ++head_;
  }

  /// Grows the slot array (x4 steps) until it covers [head_, id]; at the
  /// growth cap, spills entries that fall behind the hot tail's coverage
  /// into the overflow map instead.
  void GrowToCover(Id id) {
    const size_t need = static_cast<size_t>(id - head_) + 1;
    size_t target = NextPow2(std::max(need, slots_.size() * 4));
    if (target > max_slots_) {
      target = max_slots_;
      if (need > max_slots_) {
        // The id span itself exceeds the cap (not just the x4 step): spill
        // the lingering old entries so the ring keeps covering the hot tail
        // [id + 1 - cap, id] at bounded size. need > cap guarantees
        // id + 1 > cap, so no underflow.
        const Id new_head = id + 1 - static_cast<Id>(max_slots_);
        const Id spill_end = std::min(tail_, new_head);
        for (Id i = head_; i < spill_end; ++i) {
          Slot& s = slots_[SlotOf(i)];
          if (s.key != i) continue;
          overflow_.emplace(i, std::move(s.value));
          s.key = kFreeKey;
          s.value = V{};
          --ring_live_;
        }
        head_ = std::max(head_, new_head);
        if (tail_ < head_) tail_ = head_;
      }
    }
    if (target > slots_.size()) Rehash(target);
  }

  /// Re-places every claimed slot under the new mask. Each slot knows its
  /// key, so this scans the slot array — not the (gap-riddled) id span.
  void Rehash(size_t new_size) {
    std::vector<Slot> grown(new_size);
    const size_t new_mask = new_size - 1;
    for (Slot& s : slots_) {
      if (s.key == kFreeKey) continue;
      grown[static_cast<size_t>(s.key) & new_mask] = std::move(s);
    }
    slots_ = std::move(grown);
    mask_ = new_mask;
  }

  std::vector<Slot> slots_;  // power-of-two, indexed by id & mask_
  size_t mask_ = 0;
  size_t max_slots_ = size_t{1} << 18;  // growth cap (SetGrowthCap overrides)
  mutable Id head_ = 0;  // no ring-claimed id is < head_
  Id tail_ = 0;          // one past the newest claimed id
  size_t ring_live_ = 0; // claimed ring slots (excludes overflow)
  /// Entries whose ids fell behind the ring's capped coverage; ordered so
  /// the oldest is begin().
  std::map<Id, V> overflow_;
};

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_MONOTONE_RING_H_
