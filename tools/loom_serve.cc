// loom_serve — loom as a long-lived partitioning service.
//
// Usage:
//   loom_serve --socket /tmp/loom.sock --workload Q.lw --like S.les
//              [--system loom] [--k 8] [--window 10000] [--threshold 0.4]
//              [--shards N] [--opt key=value]...
//              [--checkpoint FILE] [--checkpoint-every EDGES]
//              [--resume FILE] [--ingest-log FILE] [--tail S.les]
//              [--out assignment.tsv]
//
// The process owns one engine::Session and serves the newline protocol
// (serve/protocol.h) on the unix-domain socket: INGEST from any number of
// concurrent writers, GET/STATS answered wait-free while ingest continues,
// CHECKPOINT/FINALIZE/SNAPSHOT-QUALITY serialised through the decision
// thread. `--tail` additionally follows a growing LOOMES file as a
// producer. Drive it with tools/loom_ctl.
//
// --like S.les reads ONLY the header of an edge-stream file to fix the
// label table and the expected vertex bound — the service must agree with
// its clients on label ids, and a stream file both sides share is the
// natural contract. No edges are read from it.
//
// Shutdown: SIGINT/SIGTERM (or a client's SHUTDOWN command) drain the
// ingest queue, write a final rotating checkpoint (with --checkpoint),
// close the ingest log and exit 0. SIGKILL loses only what a checkpoint
// has not covered — restart with --resume and re-send from the STATS
// edges= cursor.

#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "io/assignment_sink.h"
#include "io/edge_stream_io.h"
#include "query/workload_io.h"
#include "serve/server.h"
#include "util/string_util.h"

namespace {

volatile std::sig_atomic_t g_stop_signal = 0;

void HandleStopSignal(int sig) { g_stop_signal = sig; }

struct Args {
  std::string socket_path;
  std::string workload_path;
  std::string like_path;  // edge-stream header: label table + vertex bound
  std::string out_path;
  std::string system = "loom";
  std::vector<std::string> opts;
  std::string checkpoint_path;
  std::string resume_path;
  std::string ingest_log_path;
  std::string tail_path;
  uint64_t checkpoint_every = 0;
  uint32_t k = 8;
  size_t window = 10000;
  double threshold = 0.4;
  uint32_t shards = 0;
};

void Usage() {
  std::cerr
      << "usage: loom_serve --socket PATH --workload Q.lw --like S.les\n"
         "         [--system NAME | NAME:key=value,...] [--k N]\n"
         "         [--window N] [--threshold F] [--shards N]\n"
         "         [--opt key=value]... [--checkpoint FILE]\n"
         "         [--checkpoint-every EDGES] [--resume FILE]\n"
         "         [--ingest-log FILE] [--tail S.les] [--out FILE]\n"
         "protocol (newline-delimited over the unix socket):\n"
         "  INGEST u v lu lv | GET v | STATS | CHECKPOINT | FINALIZE |\n"
         "  SNAPSHOT-QUALITY | SHUTDOWN\n"
         "SIGINT/SIGTERM or SHUTDOWN drain gracefully (final checkpoint,\n"
         "flushed sinks, exit 0).\n";
}

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    auto take = [&](const char* flag, std::string* out) -> bool {
      const char* v = need_value(flag);
      if (!v) return false;
      *out = v;
      return true;
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      if (!take("--socket", &args->socket_path)) return false;
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      if (!take("--workload", &args->workload_path)) return false;
    } else if (std::strcmp(argv[i], "--like") == 0) {
      if (!take("--like", &args->like_path)) return false;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (!take("--out", &args->out_path)) return false;
    } else if (std::strcmp(argv[i], "--system") == 0) {
      if (!take("--system", &args->system)) return false;
    } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
      if (!take("--checkpoint", &args->checkpoint_path)) return false;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      if (!take("--resume", &args->resume_path)) return false;
    } else if (std::strcmp(argv[i], "--ingest-log") == 0) {
      if (!take("--ingest-log", &args->ingest_log_path)) return false;
    } else if (std::strcmp(argv[i], "--tail") == 0) {
      if (!take("--tail", &args->tail_path)) return false;
    } else if (std::strcmp(argv[i], "--opt") == 0) {
      const char* v = need_value("--opt");
      if (!v) return false;
      args->opts.emplace_back(v);
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      const char* v = need_value("--checkpoint-every");
      if (!v) return false;
      args->checkpoint_every = std::stoull(v);
    } else if (std::strcmp(argv[i], "--k") == 0) {
      const char* v = need_value("--k");
      if (!v) return false;
      args->k = static_cast<uint32_t>(std::stoul(v));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      const char* v = need_value("--window");
      if (!v) return false;
      args->window = std::stoul(v);
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      const char* v = need_value("--threshold");
      if (!v) return false;
      // Not std::stod: it accepts "nan"/"inf", which then sail through
      // every downstream range check (NaN fails all ordered comparisons).
      if (!loom::util::ParseFiniteDouble(v, &args->threshold)) {
        std::cerr << "--threshold needs a finite number, got '" << v << "'\n";
        return false;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = need_value("--shards");
      if (!v) return false;
      args->shards = static_cast<uint32_t>(std::stoul(v));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return false;
    }
  }
  if (args->socket_path.empty() && args->tail_path.empty()) {
    std::cerr << "--socket (and/or --tail) is required\n";
    return false;
  }
  if (args->workload_path.empty() || args->like_path.empty()) {
    std::cerr << "--workload and --like are required\n";
    return false;
  }
  if (args->checkpoint_every > 0 && args->checkpoint_path.empty()) {
    std::cerr << "--checkpoint-every needs --checkpoint\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loom;
  Args args;
  try {
    if (!Parse(argc, argv, &args)) {
      Usage();
      return 2;
    }
  } catch (const std::exception&) {
    std::cerr << "malformed numeric flag value\n";
    Usage();
    return 2;
  }

  try {
    // Label table + sizing from the --like stream's header; the workload is
    // interned into the SAME registry so query labels resolve to the ids
    // clients will send.
    graph::LabelRegistry registry;
    size_t expected_vertices = 0, expected_edges = 0;
    {
      io::FileEdgeSource like(args.like_path);
      std::string error;
      if (!like.InternLabels(&registry, &error)) {
        std::cerr << "error: " << error << "\n";
        return 2;
      }
      expected_vertices = like.info().vertex_count;
      expected_edges = like.info().edge_count;
    }
    query::Workload workload =
        query::ReadWorkloadFile(args.workload_path, &registry);
    std::cerr << "loom_serve: " << expected_vertices << " vertices, "
              << registry.size() << " labels (from " << args.like_path
              << "), " << workload.size() << " queries\n";

    serve::ServerConfig config;
    config.socket_path = args.socket_path;
    config.checkpoint_path = args.checkpoint_path;
    config.checkpoint_every = args.checkpoint_every;
    config.resume_path = args.resume_path;
    config.ingest_log_path = args.ingest_log_path;
    config.tail_path = args.tail_path;
    config.registry = &registry;
    config.session.spec = args.system;
    engine::EngineOptions& options = config.session.options;
    options.k = args.k;
    options.expected_vertices = expected_vertices;
    options.expected_edges = expected_edges;
    options.window_size = args.window;
    options.support_threshold = args.threshold;
    if (args.shards > 0) options.shards = args.shards;
    std::string error;
    if (!options.ApplyOverrides(args.opts, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }

    engine::BuildContext context{&workload, registry.size()};
    std::unique_ptr<serve::Server> server =
        serve::Server::Create(config, context, &error);
    if (server == nullptr) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    if (!args.resume_path.empty()) {
      std::cerr << "loom_serve: resumed at edge "
                << server->session().edges_ingested() << "\n";
    }
    // Optional TSV sink rides the same fanout as the in-memory table; its
    // file is complete only after a graceful shutdown.
    std::unique_ptr<io::FileAssignmentSink> out_sink;
    if (!args.out_path.empty()) {
      out_sink = std::make_unique<io::FileAssignmentSink>(args.out_path);
      // On resume the file starts from scratch: re-emit every restored
      // placement first (live assignments only cover the post-resume
      // stream), so the finished file covers what an uninterrupted serve
      // covers — compare as sets, placement order differs.
      if (!args.resume_path.empty()) {
        const std::span<const graph::PartitionId> restored =
            server->session().partitioning().assignments();
        for (size_t v = 0; v < restored.size(); ++v) {
          if (restored[v] != graph::kNoPartition) {
            out_sink->Append(static_cast<graph::VertexId>(v), restored[v]);
          }
        }
      }
      server->session().AddSink(out_sink.get());
    }

    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    std::signal(SIGPIPE, SIG_IGN);

    server->Start();
    if (!args.socket_path.empty()) {
      std::cerr << "loom_serve: listening on " << args.socket_path << "\n";
    }
    if (!args.tail_path.empty()) {
      std::cerr << "loom_serve: tailing " << args.tail_path << "\n";
    }

    while (g_stop_signal == 0 && !server->shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::cerr << "loom_serve: "
              << (g_stop_signal != 0 ? "signal" : "SHUTDOWN command")
              << " received, draining\n";
    server->Shutdown();
    if (out_sink != nullptr) out_sink->Flush();
    std::cerr << "loom_serve: stopped after "
              << server->edges_ingested() << " edges ("
              << server->table().assigned() << " vertices assigned, cut "
              << server->tracker().cut() << ")\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
