#include "partition/ldg_partitioner.h"

#include <algorithm>
#include <vector>

#include "util/simd.h"

namespace loom {
namespace partition {

namespace {

/// Stack-allocated per-partition counters for the common k; Choose runs for
/// every bypassed edge, so a heap allocation per call is real money.
constexpr uint32_t kStackK = 64;

struct CountsBuffer {
  uint32_t stack[kStackK];
  std::vector<uint32_t> heap;

  /// Zeroed counters for k partitions, stack-backed when k fits.
  uint32_t* Prepare(uint32_t k) {
    if (k <= kStackK) {
      std::fill_n(stack, k, 0u);
      return stack;
    }
    heap.assign(k, 0);
    return heap.data();
  }
};

// Shared argmax over count · residual-capacity scores.
graph::PartitionId BestByWeightedCount(const uint32_t* counts,
                                       const Partitioning& partitioning,
                                       bool* had_signal = nullptr) {
  const uint32_t k = partitioning.k();
  const double capacity = static_cast<double>(partitioning.Capacity());
  graph::PartitionId best = graph::kNoPartition;
  double best_score = -1.0;
  for (graph::PartitionId p = 0; p < k; ++p) {
    if (partitioning.AtCapacity(p)) continue;
    const double residual =
        1.0 - static_cast<double>(partitioning.Size(p)) / capacity;
    const double score = static_cast<double>(counts[p]) * residual;
    if (score > best_score ||
        (score == best_score && best != graph::kNoPartition &&
         partitioning.Size(p) < partitioning.Size(best))) {
      best = p;
      best_score = score;
    }
  }
  if (best == graph::kNoPartition || best_score == 0.0) {
    if (had_signal != nullptr) *had_signal = false;
    return partitioning.LeastLoaded();
  }
  if (had_signal != nullptr) *had_signal = true;
  return best;
}

/// The neighbour tally — LDG's hot loop — runs on the util::simd kernels:
/// gather each neighbour's partition from the assignment table, count per
/// partition (values >= k, i.e. kNoPartition, are skipped by the kernel).
/// The arena hands each contiguous page span to the kernel; the tally
/// accumulates into `counts`, so page boundaries are invisible to the sums.
/// A materialised hub row IS those sums, maintained incrementally — add it
/// instead of walking.
void TallyNeighbors(graph::VertexId v, const graph::NeighborView& neighborhood,
                    const Partitioning& partitioning, const HubTallyCache* hub,
                    uint32_t* counts) {
  if (hub != nullptr) {
    if (const uint32_t* row = hub->Counts(v)) {
      util::simd::AddU32(counts, row, partitioning.k());
      return;
    }
  }
  const std::span<const graph::PartitionId> table = partitioning.assignments();
  neighborhood.Neighbors(v).ForEachChunk(
      [&](const graph::VertexId* ids, size_t n) {
        util::simd::TallyGatherU32(table.data(), table.size(), ids, n,
                                   partitioning.k(), counts);
      });
}

}  // namespace

graph::PartitionId LdgHeuristic::ChooseForVertex(
    graph::VertexId v, const graph::NeighborView& neighborhood,
    const Partitioning& partitioning, const HubTallyCache* hub) {
  CountsBuffer buf;
  uint32_t* counts = buf.Prepare(partitioning.k());
  TallyNeighbors(v, neighborhood, partitioning, hub, counts);
  return BestByWeightedCount(counts, partitioning);
}

graph::PartitionId LdgHeuristic::Choose(const stream::StreamEdge& e,
                                        const graph::NeighborView& neighborhood,
                                        const Partitioning& partitioning,
                                        bool* had_signal,
                                        const HubTallyCache* hub) {
  CountsBuffer buf;
  uint32_t* counts = buf.Prepare(partitioning.k());
  for (graph::VertexId endpoint : {e.u, e.v}) {
    TallyNeighbors(endpoint, neighborhood, partitioning, hub, counts);
  }
  return BestByWeightedCount(counts, partitioning, had_signal);
}

LdgPartitioner::LdgPartitioner(const PartitionerConfig& config)
    // LDG's capacity constraint is the strict C = n/k (its residual weight
    // reaches zero at perfect balance), which is why the paper observes only
    // 1-3% imbalance for LDG vs Fennel's/Loom's ~10%.
    : partitioning_(config.k, config.expected_vertices, /*nu=*/1.0),
      seen_(config.expected_vertices, config.adj_page_entries,
            /*expected_entries=*/2 * config.expected_edges),
      hub_(config.k, config.hub_degree_threshold) {}

void LdgPartitioner::AssignVertex(graph::VertexId v, graph::PartitionId target) {
  const graph::PartitionId actual =
      AssignAndNotify(&partitioning_, v, target);
  hub_.OnAssign(v, actual, seen_);
}

void LdgPartitioner::Ingest(const stream::StreamEdge& e) {
  seen_.TouchVertex(e.u, e.label_u);
  seen_.TouchVertex(e.v, e.label_v);
  // Record the edge before deciding: the stream element carries its own
  // adjacency, so each endpoint sees the other.
  seen_.AddEdge(e.u, e.v);
  hub_.OnEdgeVisible(e.u, e.v, seen_, partitioning_);

  // Place unassigned endpoints one at a time, each seeing the other.
  if (!partitioning_.IsAssigned(e.u)) {
    AssignVertex(e.u, LdgHeuristic::ChooseForVertex(e.u, seen_, partitioning_,
                                                    &hub_));
  }
  if (!partitioning_.IsAssigned(e.v)) {
    AssignVertex(e.v, LdgHeuristic::ChooseForVertex(e.v, seen_, partitioning_,
                                                    &hub_));
  }
}

bool LdgPartitioner::SaveState(io::CheckpointWriter* w, std::string* error) const {
  (void)error;
  partitioning_.SaveTo(w);
  seen_.SaveTo(w, "seen_graph");
  return true;
}

bool LdgPartitioner::RestoreState(io::CheckpointReader* r, std::string* error) {
  (void)error;
  partitioning_.LoadFrom(r);
  seen_.LoadFrom(r, "seen_graph");
  // Hub rows are derived state — never checkpointed, always re-derived.
  hub_.Rebuild(seen_, seen_.NumSlots(), partitioning_);
  return true;
}

}  // namespace partition
}  // namespace loom
