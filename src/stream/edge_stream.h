// Materialised edge streams over a LabeledGraph.
//
// Experiments stream a fully-generated graph from "disk" in a chosen order
// (Sec. 5.1); EdgeStream captures that: a fixed permutation of a graph's
// edges, iterable as StreamEdge elements with labels attached.

#ifndef LOOM_STREAM_EDGE_STREAM_H_
#define LOOM_STREAM_EDGE_STREAM_H_

#include <cstddef>
#include <vector>

#include "graph/labeled_graph.h"
#include "stream/stream_edge.h"

namespace loom {
namespace stream {

/// A replayable stream of a graph's edges in a fixed order. StreamEdge ids
/// are stream positions (0-based), not the underlying graph EdgeIds.
class EdgeStream {
 public:
  EdgeStream() = default;

  /// Builds a stream from `g` visiting edges in `edge_order` (a permutation
  /// of g's edge ids; validated by assert in debug builds).
  EdgeStream(const graph::LabeledGraph& g,
             const std::vector<graph::EdgeId>& edge_order);

  size_t size() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  const StreamEdge& operator[](size_t i) const { return edges_[i]; }

  std::vector<StreamEdge>::const_iterator begin() const { return edges_.begin(); }
  std::vector<StreamEdge>::const_iterator end() const { return edges_.end(); }

 private:
  std::vector<StreamEdge> edges_;
};

}  // namespace stream
}  // namespace loom

#endif  // LOOM_STREAM_EDGE_STREAM_H_
