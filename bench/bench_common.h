// Shared helpers for the figure/table reproduction binaries.
//
// Scale note: every harness runs the synthetic datasets at LOOM_BENCH_SCALE
// (default 0.5) so the full suite finishes in minutes on a laptop; set the
// environment variable LOOM_BENCH_SCALE to run larger. Relative results
// (everything the paper reports) are stable across scales.

#ifndef LOOM_BENCH_BENCH_COMMON_H_
#define LOOM_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <string>

namespace loom {
namespace bench {

inline double BenchScale(double fallback = 0.5) {
  const char* env = std::getenv("LOOM_BENCH_SCALE");
  if (env == nullptr) return fallback;
  double v = std::atof(env);
  return v > 0 ? v : fallback;
}

inline size_t BenchWindow(size_t fallback = 4000) {
  const char* env = std::getenv("LOOM_BENCH_WINDOW");
  if (env == nullptr) return fallback;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "(reproduces " << paper_ref
            << "; scale=" << BenchScale() << ", set LOOM_BENCH_SCALE to change)\n\n";
}

}  // namespace bench
}  // namespace loom

#endif  // LOOM_BENCH_BENCH_COMMON_H_
