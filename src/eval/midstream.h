// Mid-stream evaluation with Ptemp as an extra partition (Sec. 3 / 5.3).
//
// The paper notes that the sliding window is itself a temporary partition:
// edges buffered in Ptemp are queryable before permanent placement, and a
// window that is too large becomes its own source of inter-partition
// traversals. The end-of-stream measurements of Figs. 7-9 cannot see this
// cost; this harness can. At evenly spaced checkpoints it materialises the
// streamed-so-far prefix graph, views still-unassigned vertices as living in
// the extra partition k (= Ptemp), executes the workload, and reports the
// ipt — so the window-size trade-off of Sec. 5.3's closing paragraph is
// measurable.

#ifndef LOOM_EVAL_MIDSTREAM_H_
#define LOOM_EVAL_MIDSTREAM_H_

#include <vector>

#include "datasets/schema.h"
#include "engine/engine.h"
#include "query/query_executor.h"
#include "stream/edge_stream.h"

namespace loom {
namespace eval {

struct MidstreamConfig {
  /// Number of evenly spaced evaluation points over the stream.
  size_t num_checkpoints = 4;
  query::ExecutorConfig executor{.max_seeds = 1000,
                                 .max_matches_per_seed = 128};
};

struct CheckpointResult {
  size_t edges_streamed = 0;
  /// Workload-weighted ipt over the prefix graph, with unassigned vertices
  /// charged to the Ptemp partition.
  double weighted_ipt = 0.0;
  /// Fraction of touched vertices still resident in Ptemp.
  double ptemp_share = 0.0;
};

struct MidstreamResult {
  std::vector<CheckpointResult> checkpoints;
  /// Mean weighted ipt over the checkpoints — the headline number the
  /// window-size ablation compares.
  double mean_weighted_ipt = 0.0;
};

/// Steps `es` through a fresh "loom" engine::Session configured by
/// `options` (IngestSome to each checkpoint — never finalizing, so Ptemp
/// stays populated), evaluating at checkpoints. `ds` supplies labels and
/// the workload.
MidstreamResult RunLoomMidstream(const datasets::Dataset& ds,
                                 const stream::EdgeStream& es,
                                 const engine::EngineOptions& options,
                                 const MidstreamConfig& config = {});

}  // namespace eval
}  // namespace loom

#endif  // LOOM_EVAL_MIDSTREAM_H_
