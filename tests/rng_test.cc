#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace loom {
namespace util {
namespace {

TEST(SplitMix64Test, DeterministicForEqualSeeds) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(123);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformBoundOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(321);
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.UniformInt(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.03);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[1]), 3.0, 0.4);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleHandlesTinyVectors) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>({42}));
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, InRangeAndSkewedTowardLowRanks) {
  const double s = GetParam();
  Rng rng(41);
  const uint64_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 50000; ++i) {
    uint64_t r = rng.Zipf(n, s);
    ASSERT_LT(r, n);
    ++counts[r];
  }
  // Rank 0 should dominate the tail ranks for positive skew.
  EXPECT_GT(counts[0], counts[n - 1]);
  EXPECT_GT(counts[0], counts[n / 2]);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.3));

TEST(ZipfTest, SingleElementAlwaysZero) {
  Rng rng(43);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Zipf(1, 1.0), 0u);
}

}  // namespace
}  // namespace util
}  // namespace loom
