#include "partition/edge/edge_partitioner.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>

namespace loom {
namespace partition {
namespace edge {

EdgePartitioner::EdgePartitioner(const PartitionerConfig& config)
    // The primary vertex table carries each vertex's FIRST replica part for
    // the shared eval/sink plumbing; the ν=2.0 slack (same idiom as
    // hash_partitioner) guarantees Assign never diverts, so the table is a
    // faithful record of the edge placements rather than a second heuristic.
    : partitioning_(config.k, config.expected_vertices, /*nu=*/2.0),
      words_((config.k + 63) / 64),
      loads_(config.k, 0) {
  degrees_.reserve(config.expected_vertices);
  replicas_.reserve(config.expected_vertices * words_);
}

void EdgePartitioner::EnsureVertex(graph::VertexId v) {
  if (v >= degrees_.size()) {
    degrees_.resize(static_cast<size_t>(v) + 1, 0);
    replicas_.resize((static_cast<size_t>(v) + 1) * words_, 0);
  }
}

void EdgePartitioner::AddReplica(graph::VertexId v, graph::PartitionId p) {
  const size_t base = static_cast<size_t>(v) * words_;
  uint64_t& word = replicas_[base + p / 64];
  const uint64_t bit = 1ULL << (p % 64);
  if ((word & bit) != 0) return;
  bool had_any = false;
  for (uint32_t w = 0; w < words_ && !had_any; ++w) {
    had_any = replicas_[base + w] != 0;
  }
  word |= bit;
  ++replica_total_;
  if (!had_any) ++vertices_seen_;
}

void EdgePartitioner::Ingest(const stream::StreamEdge& e) {
  EnsureVertex(e.u);
  EnsureVertex(e.v);
  // Partial degrees are bumped BEFORE scoring (the NuCut/Adwise HDRF
  // convention): the edge being placed counts toward its own endpoints'
  // degrees, so the very first edge sees δu = δv = 1/2.
  ++degrees_[e.u];
  if (e.v != e.u) ++degrees_[e.v];

  const graph::PartitionId p = PlaceEdge(e);
  assert(p < k());

  AddReplica(e.u, p);
  if (e.v != e.u) AddReplica(e.v, p);
  ++loads_[p];
  ++edges_assigned_;
  edge_hash_ = (edge_hash_ ^ p) * 0x100000001b3ULL;  // FNV-1a over placements

  // Primary vertex placement: first replica part wins, routed through
  // AssignAndNotify so OnAssign/sinks/eval see edge backends uniformly.
  AssignAndNotify(&partitioning_, e.u, p);
  if (e.v != e.u) AssignAndNotify(&partitioning_, e.v, p);

  if (observer() != nullptr) observer()->OnEdgeAssign({e.id, e.u, e.v, p});
}

double EdgePartitioner::ReplicationFactor() const {
  return vertices_seen_ > 0
             ? static_cast<double>(replica_total_) / vertices_seen_
             : 0.0;
}

double EdgePartitioner::EdgeBalance() const {
  if (edges_assigned_ == 0) return 0.0;
  uint64_t max_load = 0;
  for (uint64_t l : loads_) max_load = std::max(max_load, l);
  return static_cast<double>(max_load) * k() / edges_assigned_;
}

bool EdgePartitioner::IsReplicaOf(graph::VertexId v,
                                  graph::PartitionId p) const {
  if (v >= degrees_.size() || p >= k()) return false;
  const uint64_t word = replicas_[static_cast<size_t>(v) * words_ + p / 64];
  return (word >> (p % 64)) & 1ULL;
}

graph::PartitionId EdgePartitioner::HdrfGreedyPick(const stream::StreamEdge& e,
                                                   double lambda,
                                                   double epsilon,
                                                   double capacity) const {
  // Partial degrees already include this edge (see Ingest): δu is u's share
  // of the edge's combined streamed-so-far degree.
  const double theta_u = PartialDegree(e.u);
  const double theta_v = PartialDegree(e.v);
  const double delta_u = theta_u / (theta_u + theta_v);
  const double delta_v = 1.0 - delta_u;

  const std::vector<uint64_t>& load = loads_;
  const uint64_t max_load = *std::max_element(load.begin(), load.end());
  const uint64_t min_load = *std::min_element(load.begin(), load.end());
  const double spread = epsilon + static_cast<double>(max_load - min_load);

  graph::PartitionId best = 0;
  double best_score = -1.0;  // every real score is >= 0
  bool found = false;
  for (graph::PartitionId p = 0; p < k(); ++p) {
    if (static_cast<double>(load[p]) + 1.0 > capacity) continue;
    double rep = 0.0;
    if (IsReplicaOf(e.u, p)) rep += 1.0 + (1.0 - delta_u);
    if (e.v != e.u && IsReplicaOf(e.v, p)) rep += 1.0 + (1.0 - delta_v);
    const double bal = static_cast<double>(max_load - load[p]) / spread;
    const double score = rep + lambda * bal;
    // Pinned tie-break: strictly-greater wins; equal score -> smaller load
    // wins; equal load -> keep the lower id.
    if (!found || score > best_score ||
        (score == best_score && load[p] < load[best])) {
      best = p;
      best_score = score;
      found = true;
    }
  }
  assert(found);
  return best;
}

uint32_t EdgePartitioner::ReplicaCount(graph::VertexId v) const {
  if (v >= degrees_.size()) return 0;
  uint32_t count = 0;
  for (uint32_t w = 0; w < words_; ++w) {
    count += std::popcount(replicas_[static_cast<size_t>(v) * words_ + w]);
  }
  return count;
}

void EdgePartitioner::FillFinalStats(engine::FinalStatsEvent* stats) const {
  uint64_t max_load = 0, min_load = loads_.empty() ? 0 : loads_[0];
  for (uint64_t l : loads_) {
    max_load = std::max(max_load, l);
    min_load = std::min(min_load, l);
  }
  stats->counters.emplace_back("edge_assignments", edges_assigned_);
  stats->counters.emplace_back("vertices_seen", vertices_seen_);
  stats->counters.emplace_back("replica_total", replica_total_);
  stats->counters.emplace_back("max_part_edges", max_load);
  stats->counters.emplace_back("min_part_edges", min_load);
  stats->counters.emplace_back("edge_assignment_hash", edge_hash_);
}

bool EdgePartitioner::SaveState(io::CheckpointWriter* w,
                                std::string* error) const {
  (void)error;
  w->BeginSection("edge_state");
  w->U32(k());
  w->U32(words_);
  w->U64(edges_assigned_);
  w->U64(edge_hash_);
  w->U64(replica_total_);
  w->U64(vertices_seen_);
  w->PodVec(loads_);
  w->PodVec(degrees_);
  w->PodVec(replicas_);
  SaveExtra(w);
  w->EndSection();
  partitioning_.SaveTo(w);
  return true;
}

bool EdgePartitioner::RestoreState(io::CheckpointReader* r,
                                   std::string* error) {
  if (edges_assigned_ != 0 || partitioning_.NumAssigned() != 0) {
    *error = "RestoreState requires a fresh instance (edges already ingested)";
    return false;
  }
  r->Open("edge_state");
  const uint32_t saved_k = r->U32();
  if (saved_k != k()) {
    *error = "edge_state k mismatch: checkpoint has k=" +
             std::to_string(saved_k) + ", this instance has k=" +
             std::to_string(k());
    return false;
  }
  const uint32_t saved_words = r->U32();
  if (saved_words != words_) {
    *error = "edge_state replica-mask width mismatch: checkpoint has " +
             std::to_string(saved_words) + " words/vertex, expected " +
             std::to_string(words_);
    return false;
  }
  edges_assigned_ = r->U64();
  edge_hash_ = r->U64();
  replica_total_ = r->U64();
  vertices_seen_ = r->U64();
  r->PodVec(&loads_);
  r->PodVec(&degrees_);
  r->PodVec(&replicas_);
  if (loads_.size() != k()) {
    *error = "edge_state load table has " + std::to_string(loads_.size()) +
             " entries, expected k=" + std::to_string(k());
    return false;
  }
  if (replicas_.size() != degrees_.size() * words_) {
    *error = "edge_state replica table has " +
             std::to_string(replicas_.size()) + " words for " +
             std::to_string(degrees_.size()) + " vertices (expected " +
             std::to_string(degrees_.size() * words_) + ")";
    return false;
  }
  // Semantic validation (same discipline as DynamicGraph::LoadFrom): the
  // stored scalar counters must agree with the loaded tables, so a
  // hand-edited or checksum-colliding file fails actionably instead of
  // silently desyncing the quality triple.
  const uint64_t load_sum =
      std::accumulate(loads_.begin(), loads_.end(), uint64_t{0});
  if (load_sum != edges_assigned_) {
    *error = "edge_state counter desync: part loads sum to " +
             std::to_string(load_sum) + " but edges_assigned=" +
             std::to_string(edges_assigned_);
    return false;
  }
  uint64_t mask_bits = 0, mask_vertices = 0;
  for (size_t v = 0; v < degrees_.size(); ++v) {
    uint32_t bits = 0;
    for (uint32_t w = 0; w < words_; ++w) {
      bits += std::popcount(replicas_[v * words_ + w]);
    }
    mask_bits += bits;
    if (bits > 0) ++mask_vertices;
  }
  if (mask_bits != replica_total_ || mask_vertices != vertices_seen_) {
    *error = "edge_state counter desync: replica masks hold " +
             std::to_string(mask_bits) + " bits over " +
             std::to_string(mask_vertices) + " vertices but counters say " +
             std::to_string(replica_total_) + " / " +
             std::to_string(vertices_seen_);
    return false;
  }
  if (!RestoreExtra(r, error)) return false;
  r->Close();
  partitioning_.LoadFrom(r);
  return true;
}

}  // namespace edge
}  // namespace partition
}  // namespace loom
