// Thread team + cross-shard sequencing machinery for the sharded Loom
// backend ("loom-sharded", core/loom_sharded.h).
//
// The sharded backend splits every ingest batch into fixed-size slices and
// posts each slice to every shard's bounded work queue; shard workers scan
// the slice and perform the work for the vertices they own (adjacency
// appends, label bookkeeping, admission probes — all pure or shard-local).
// Dispatch() then acts as the sequencing barrier: it returns only once
// every shard has drained every slice of the batch, at which point the
// calling thread (the sequencer) owns all shared state exclusively and
// replays the decision pipeline in exact stream order. This strict
// fan-out/sequence alternation is what makes the backend's output
// bit-identical to single-threaded Loom for every shard count and every
// thread interleaving: workers never touch decision state, the sequencer
// never runs concurrently with workers, and worker work is a pure function
// of the slice plus shard-owned state.
//
// The queues are bounded (shard_queue_depth work items per shard) so a
// sequencer bursting far ahead of a slow shard blocks instead of growing
// memory without bound; the stall/depth counters feed the backend's
// sequencing stats (ProgressEvent and LoomShardedPartitioner getters).

#ifndef LOOM_CORE_SHARD_SEQUENCER_H_
#define LOOM_CORE_SHARD_SEQUENCER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "stream/stream_edge.h"

namespace loom {
namespace core {

/// Cross-shard sequencing counters. The stall/wait fields depend on thread
/// timing and are reporting-only; they never influence partitioning state.
struct ShardSequencerStats {
  uint64_t batches_dispatched = 0;  // Dispatch() calls
  uint64_t slices_posted = 0;       // work items enqueued, summed over shards
  uint64_t queue_full_stalls = 0;   // posts that blocked on a full queue
  uint64_t barrier_waits = 0;       // dispatches that blocked on the barrier
  uint64_t max_queue_depth = 0;     // high-water mark of any shard queue
};

/// S worker threads, each consuming a bounded FIFO of batch slices. Workers
/// are spawned once and live across Finalize checkpoints (an online stream
/// has no real end); the destructor drains, stops and joins them.
class ShardTeam {
 public:
  /// A contiguous run of stream edges within one dispatched batch.
  /// `base` is the offset of the slice's first edge inside that batch (for
  /// per-batch output arrays such as admission bitmaps); spans stay valid
  /// for the duration of the Dispatch() call that posted them.
  struct Slice {
    std::span<const stream::StreamEdge> edges;
    size_t base = 0;
  };

  /// Called on the worker thread of shard `shard` for every slice of every
  /// dispatched batch, in stream order. Must confine its writes to state
  /// owned by that shard (plus per-edge output cells owned by that shard);
  /// two shards are never handed the same cell.
  using SliceFn = std::function<void(uint32_t shard, const Slice& slice)>;

  /// Spawns `num_shards` (>= 1) workers with `queue_depth` (>= 1) slice
  /// slots each; batches are cut into slices of `slice_edges` (>= 1) edges.
  ShardTeam(uint32_t num_shards, size_t queue_depth, size_t slice_edges,
            SliceFn fn);
  ~ShardTeam();

  ShardTeam(const ShardTeam&) = delete;
  ShardTeam& operator=(const ShardTeam&) = delete;

  /// Cuts `batch` into slices, posts every slice to every shard (bounded
  /// queues; blocks on a full one) and waits until all shards have
  /// processed all of them. On return the team is quiescent: no worker
  /// holds a slice, so the caller has exclusive access to all shard state
  /// until the next Dispatch.
  void Dispatch(std::span<const stream::StreamEdge> batch);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Snapshot of the sequencing counters (call while quiescent).
  const ShardSequencerStats& stats() const { return stats_; }

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable work_ready;  // worker <- producer: slice queued
    std::condition_variable drained;     // producer <- worker: slice done
    std::deque<Slice> queue;
    uint64_t posted = 0;  // slices ever enqueued
    uint64_t done = 0;    // slices fully processed
    bool stop = false;
    std::thread thread;
  };

  void WorkerLoop(uint32_t shard);

  /// Posts one slice to one shard, blocking while its queue is full.
  void Post(Worker& w, const Slice& slice);

  const size_t queue_depth_;
  const size_t slice_edges_;
  const SliceFn fn_;
  ShardSequencerStats stats_;  // sequencer-thread only
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace core
}  // namespace loom

#endif  // LOOM_CORE_SHARD_SEQUENCER_H_
