// Ablation (ours, motivated by Sec. 3 / 5.3's closing paragraph): the cost
// of the temporary partition Ptemp. Mid-stream, edges buffered in the window
// are queryable only through Ptemp; a very large window therefore trades
// end-of-stream quality for mid-stream ipt. We sweep the window size and
// report mid-stream (checkpointed, Ptemp-charged) ipt next to the usual
// end-of-stream ipt.

#include <iostream>

#include "bench_common.h"
#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "eval/midstream.h"
#include "util/table_writer.h"

int main() {
  using namespace loom;
  bench::Banner("Ablation — Ptemp cost vs window size",
                "Sec. 3 / Sec. 5.3 closing paragraph");

  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, bench::BenchScale());
  const stream::EdgeStream es = stream::MakeStream(
      ds.graph, stream::StreamOrder::kRandom, /*seed=*/0x10c5);

  util::TableWriter t({"window t", "midstream ipt (with Ptemp)",
                       "avg Ptemp share", "end-of-stream ipt"});
  for (size_t window : {100u, 1000u, 4000u, 10000u, 20000u}) {
    engine::EngineOptions options;
    options.k = 8;
    options.expected_vertices = ds.NumVertices();
    options.expected_edges = ds.NumEdges();
    options.window_size = window;

    eval::MidstreamResult mid = eval::RunLoomMidstream(ds, es, options);
    double ptemp_share = 0.0;
    for (const auto& cp : mid.checkpoints) ptemp_share += cp.ptemp_share;
    if (!mid.checkpoints.empty()) ptemp_share /= mid.checkpoints.size();

    eval::ExperimentConfig cfg;
    cfg.order = stream::StreamOrder::kRandom;
    cfg.window_size = window;
    eval::SystemResult end = eval::RunSystem(eval::System::kLoom, ds, es, cfg);

    t.AddRow({std::to_string(window),
              util::TableWriter::Fmt(mid.mean_weighted_ipt, 0),
              util::TableWriter::Pct(ptemp_share),
              util::TableWriter::Fmt(end.weighted_ipt, 0)});
  }
  t.Print(std::cout);

  std::cout << "\nExpected shape: end-of-stream ipt improves with t and "
               "flattens (Fig. 9), while the\nmid-stream Ptemp share (and "
               "with it mid-stream ipt) grows — the trade-off the paper\n"
               "warns about when suggesting not to grow the window "
               "indefinitely.\n";
  return 0;
}
