#include "graph/dynamic_graph.h"

#include <cassert>
#include <string>

namespace loom {
namespace graph {

void DynamicGraph::Reserve(size_t n) {
  if (labels_.size() < n) {
    labels_.resize(n, kInvalidLabel);
    arena_.Reserve(n);
  }
}

void DynamicGraph::TouchVertex(VertexId v, LabelId label) {
  assert(label != kInvalidLabel);
  if (v >= labels_.size()) {
    labels_.resize(v + 1, kInvalidLabel);
    arena_.Reserve(labels_.size());
  }
  if (labels_[v] == kInvalidLabel) {
    labels_[v] = label;
    ++num_vertices_;
  } else {
    assert(labels_[v] == label && "vertex relabelled with a different label");
  }
}

void DynamicGraph::AddEdge(VertexId u, VertexId v) {
  assert(Known(u) && Known(v));
  arena_.Append(u, v);
  // Self-loops canonicalise to one entry: the old layout pushed v into its
  // own list twice, double-counting the degree every heuristic reads.
  if (u != v) arena_.Append(v, u);
  ++num_edges_;
}

void DynamicGraph::SaveTo(io::CheckpointWriter* w,
                          std::string_view name) const {
  w->BeginSection(name);
  w->U64(num_vertices_);
  w->U64(num_edges_);
  w->PodVec(labels_);
  // Chain-per-vertex, flattened: byte-identical to the legacy
  // PodVec(std::vector<VertexId>) per slot, so pre-arena checkpoints load
  // transparently and equal states still produce equal bytes.
  w->U64(labels_.size());
  for (VertexId v = 0; v < labels_.size(); ++v) arena_.SaveChain(w, v);
  w->EndSection();
}

void DynamicGraph::LoadFrom(io::CheckpointReader* r, std::string_view name) {
  assert(num_vertices_ == 0 && num_edges_ == 0);
  r->Open(name);
  num_vertices_ = r->U64();
  num_edges_ = r->U64();
  r->PodVec(&labels_);
  const uint64_t adj_slots = r->U64();
  if (adj_slots != labels_.size()) {
    r->Fail("graph section '" + std::string(name) +
            "': adjacency/label table size mismatch");
  }
  arena_.Reserve(adj_slots);
  uint64_t self_entries = 0;
  for (VertexId v = 0; v < adj_slots; ++v) {
    arena_.LoadChain(r, v);
    for (const VertexId w : arena_.Neighbors(v)) {
      if (w >= adj_slots || labels_[w] == kInvalidLabel) {
        r->Fail("graph section '" + std::string(name) + "': vertex " +
                std::to_string(v) + " has neighbour " + std::to_string(w) +
                " outside the labelled vertex set (corrupt adjacency)");
      }
      if (w == v) ++self_entries;
    }
  }
  // The counters travelled with the file but are NOT trusted: recompute
  // both from the tables just loaded and reject on mismatch — a flipped
  // counter in a hand-edited (re-checksummed) file would otherwise desync
  // every stat and capacity computation downstream.
  uint64_t labelled = 0;
  for (const LabelId l : labels_) {
    if (l != kInvalidLabel) ++labelled;
  }
  if (labelled != num_vertices_) {
    r->Fail("graph section '" + std::string(name) + "': declares " +
            std::to_string(num_vertices_) + " vertices but the label table " +
            "holds " + std::to_string(labelled) +
            " labelled entries (counter desync — hand-edited or corrupt "
            "checkpoint)");
  }
  // Each non-self edge contributes two adjacency entries, each self-loop
  // exactly one (canonical form), so entries + self_entries == 2 * edges.
  const uint64_t entries = arena_.TotalEntries();
  if (entries + self_entries != 2 * num_edges_) {
    r->Fail("graph section '" + std::string(name) + "': declares " +
            std::to_string(num_edges_) + " edges but the adjacency holds " +
            std::to_string(entries) + " entries (" +
            std::to_string(self_entries) +
            " self) — counter desync, or a pre-canonicalisation checkpoint "
            "with double-inserted self-loops; re-create the checkpoint");
  }
  r->Close();
}

}  // namespace graph
}  // namespace loom
